"""Tests for distributed k-selection (Section 4, Theorem 4.2)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.kselect import CandidateSet, KSelectCluster, distributed_select


class TestCandidateSet:
    def test_sorted_iteration(self):
        cs = CandidateSet([(3, 0), (1, 1), (2, 2)])
        assert list(cs) == [(1, 1), (2, 2), (3, 0)]

    def test_duplicates_rejected(self):
        with pytest.raises(ProtocolError):
            CandidateSet([(1, 1), (1, 1)])

    def test_kth_smallest(self):
        cs = CandidateSet([(5, 0), (1, 1), (3, 2)])
        assert cs.kth_smallest(1) == (1, 1)
        assert cs.kth_smallest(3) == (5, 0)
        with pytest.raises(ProtocolError):
            cs.kth_smallest(4)

    def test_local_minmax_ranks_clamped(self):
        cs = CandidateSet([(1, 0), (2, 1)])
        lo, hi = cs.local_minmax_ranks(k=100, n=4)
        assert lo == (1, 0) or lo == (2, 1)
        assert hi == (2, 1)
        assert cs.local_minmax_ranks(k=1, n=100) == ((1, 0), (1, 0))

    def test_empty_set_minmax_none(self):
        assert CandidateSet().local_minmax_ranks(5, 2) is None

    def test_counts(self):
        cs = CandidateSet([(1, 0), (2, 0), (3, 0)])
        assert cs.count_below((2, 0)) == 1
        assert cs.count_above((2, 0)) == 1

    def test_prune_inclusive(self):
        cs = CandidateSet([(i, 0) for i in range(1, 8)])
        below, above = cs.prune((3, 0), (5, 0))
        assert below == 2 and above == 2
        assert list(cs) == [(3, 0), (4, 0), (5, 0)]

    def test_prune_open_sides(self):
        cs = CandidateSet([(i, 0) for i in range(5)])
        assert cs.prune(None, None) == (0, 0)
        assert len(cs) == 5

    @given(
        st.lists(st.integers(0, 1000), unique=True, max_size=50),
        st.integers(0, 1000),
        st.integers(0, 1000),
    )
    def test_prune_matches_list_comprehension(self, prios, lo, hi):
        lo_k, hi_k = (min(lo, hi), 0), (max(lo, hi), 0)
        keys = [(p, 7) for p in prios]
        cs = CandidateSet(keys)
        cs.prune(lo_k, hi_k)
        assert list(cs) == sorted(k for k in keys if lo_k <= k <= hi_k)


def _scattered(n, m, seed, span=1 << 20, delta_scale=1.0):
    rng = random.Random(seed)
    keys = [(rng.randint(1, span), uid) for uid in range(m)]
    cluster = KSelectCluster(n, seed=seed, delta_scale=delta_scale)
    cluster.scatter(keys)
    return cluster, keys


class TestKSelectCorrectness:
    def test_select_median(self):
        cluster, keys = _scattered(12, 300, seed=1)
        assert cluster.select(150) == sorted(keys)[149]

    def test_select_extremes(self):
        cluster, keys = _scattered(8, 100, seed=2)
        assert cluster.select(1) == sorted(keys)[0]
        assert cluster.select(100) == sorted(keys)[-1]

    def test_duplicate_priorities_tiebreak(self):
        keys = [(7, uid) for uid in range(50)]
        cluster = KSelectCluster(6, seed=3)
        cluster.scatter(keys)
        assert cluster.select(25) == (7, 24)

    def test_single_node_cluster(self):
        cluster = KSelectCluster(1, seed=4)
        keys = [(i, i) for i in range(20)]
        cluster.scatter(keys)
        assert cluster.select(5) == (4, 4)

    def test_tiny_element_count(self):
        cluster = KSelectCluster(8, seed=5)
        cluster.scatter([(3, 0), (1, 1)])
        assert cluster.select(2) == (3, 0)

    def test_m_smaller_than_n(self):
        cluster = KSelectCluster(16, seed=6)
        cluster.scatter([(i, i) for i in range(5)])
        assert cluster.select(3) == (2, 2)

    def test_k_out_of_range_rejected(self):
        cluster, _ = _scattered(4, 10, seed=7)
        with pytest.raises(ProtocolError):
            cluster.select(11)
        with pytest.raises(ProtocolError):
            cluster.select(0)

    def test_sequential_sessions(self):
        cluster, keys = _scattered(8, 120, seed=8)
        truth = sorted(keys)
        for k in (10, 60, 120):
            assert cluster.select(k) == truth[k - 1]

    def test_convenience_wrapper(self):
        keys = [(9 - i, i) for i in range(9)]
        assert distributed_select(keys, k=2, n_nodes=4, seed=0) == sorted(keys)[1]

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8)
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 12)
        m = rng.randint(1, 150)
        cluster, keys = _scattered(n, m, seed=seed, span=rng.choice([10, 1 << 16]))
        k = rng.randint(1, m)
        assert cluster.select(k) == sorted(keys)[k - 1]

    def test_skewed_distribution_not_uniform(self):
        """All elements at one node — pruning guards must keep correctness."""
        cluster = KSelectCluster(8, seed=9)
        keys = [(i, i) for i in range(200)]
        cluster.middle_node(3).local_elements.extend(keys)
        assert cluster.select(77) == (76, 76)

    def test_delta_scale_variants(self):
        for scale in (0.25, 2.0):
            cluster, keys = _scattered(8, 200, seed=10, delta_scale=scale)
            assert cluster.select(100) == sorted(keys)[99]


class TestKSelectBehaviour:
    def test_phase1_reduces_candidates(self):
        cluster, keys = _scattered(16, 16 * 64, seed=11)
        cluster.select(len(keys) // 2)
        stats = cluster.last_run_stats()
        n = 16
        assert stats["after_phase1"] < stats["initial_N"]
        assert stats["after_phase1"] <= n**1.5 * math.log2(n)

    def test_final_candidates_small(self):
        cluster, keys = _scattered(16, 16 * 64, seed=12)
        cluster.select(len(keys) // 2)
        stats = cluster.last_run_stats()
        assert stats["final_N"] <= max(64, 4 * math.sqrt(16)) * 4

    def test_message_sizes_stay_logarithmic(self):
        cluster, keys = _scattered(16, 600, seed=13)
        cluster.select(300)
        # keys are < 2^21, uids < 2^10: every message is a few hundred bits,
        # never anything near the Θ(m)-sized gathers.
        assert cluster.metrics.max_message_bits < 3000

    def test_selection_does_not_change_candidates_outside_session(self):
        cluster, keys = _scattered(6, 60, seed=14)
        before = sorted(k for node in cluster.middles() for k in node.local_elements)
        cluster.select(30)
        after = sorted(k for node in cluster.middles() for k in node.local_elements)
        assert before == after

    def test_async_runner_selection(self):
        rng = random.Random(15)
        keys = [(rng.randint(1, 1 << 16), uid) for uid in range(80)]
        cluster = KSelectCluster(6, seed=15, runner="async")
        cluster.scatter(keys)
        assert cluster.select(40, max_rounds=200_000) == sorted(keys)[39]


class TestDegenerateWindows:
    def test_oversized_delta_falls_back_but_stays_exact(self):
        """A δ window wider than any sample stalls phase 2; the escalation
        ladder (and ultimately the gather fallback) must stay exact."""
        cluster, keys = _scattered(8, 400, seed=42, delta_scale=50.0)
        k = 200
        assert cluster.select(k) == sorted(keys)[k - 1]

    def test_two_node_cluster(self):
        cluster, keys = _scattered(2, 60, seed=43)
        assert cluster.select(30) == sorted(keys)[29]

    def test_k_equals_one_large_m(self):
        cluster, keys = _scattered(8, 800, seed=44)
        assert cluster.select(1) == sorted(keys)[0]
