"""The federation test battery: merge, routing, rebalance, chaos, acceptance.

Four layers, cheapest first:

* **merge units** — synthetic per-shard history payloads through
  :func:`merge_shard_histories`: namespacing, ⊥ alignment, loud failure
  on locally inconsistent shards, heterogeneity rejection;
* **in-process router** — real :class:`QueueRouter` over real
  :class:`QueueService` instances in one event loop (no subprocesses):
  band routing, global DeleteMin order, kselect/census fan-out,
  unavailable semantics after a shard dies, split-rebalance;
* **connect retry** — the client's seeded ECONNREFUSED backoff;
* **cross-process acceptance + chaos** — :class:`ShardController` spawns
  real shard OS processes: the 4-shard federation must beat a
  single-shard service of the same total node count on the same seeded
  mix, the merged history must pass the full checker stack, and a
  SIGKILL'd shard must degrade to clean retryable errors with no silent
  loss of survivor-acknowledged operations.
"""

import asyncio
import random
import socket

import pytest

from repro.errors import ConsistencyError, ServiceError, UnavailableError
from repro.semantics.checkers import (
    check_element_conservation,
    check_seap_history,
    check_skeap_history,
)
from repro.semantics.history import History
from repro.service.client import QueueClient
from repro.service.controller import ShardController
from repro.service.federation import (
    NODE_NAMESPACE,
    UID_NAMESPACE,
    merge_shard_histories,
)
from repro.service.loadgen import LoadReport, LoadSpec, run_loadtest
from repro.service.partition import even_partition
from repro.service.router import QueueRouter, default_band_range
from repro.service.server import QueueService
from repro.sim.rng import derive_seed
from repro.workloads.generators import fixed_priorities, uniform_priorities


# -- merge units ------------------------------------------------------------

def _ins(node, seq, priority, uid, order):
    return {"op": [node, seq], "kind": "ins", "priority": priority, "uid": uid,
            "order": [order], "ret": None, "bot": False, "done": True}


def _del(node, seq, order, *, ret=None, bot=False):
    return {"op": [node, seq], "kind": "del", "priority": None, "uid": None,
            "order": [order], "ret": ret, "bot": bot, "done": True}


def _payload(ops, stored=(), proto="skeap", **extra):
    return {"history": {"ops": list(ops)}, "stored_uids": list(stored),
            "proto": proto, "order": "min", "discipline": "fifo", **extra}


TWO_BANDS = even_partition(2, 1, 9)  # shard 0: (-inf, 5), shard 1: [5, +inf)


class TestMergeShardHistories:
    def test_namespacing_and_witness_pass_the_checkers(self):
        payloads = {
            0: _payload([_ins(0, 0, 1, 0, 0), _del(0, 1, 1, ret=0)]),
            1: _payload([_ins(0, 0, 7, 0, 0), _del(0, 1, 1, ret=0)]),
        }
        merged = merge_shard_histories(payloads, TWO_BANDS)
        ops = merged["history"]["ops"]
        assert [tuple(e["op"]) for e in ops] == [
            # phase 2 emits the worst band's ⊥-free suffix first
            (NODE_NAMESPACE, 0), (NODE_NAMESPACE, 1), (0, 0), (0, 1),
        ]
        assert [e["order"] for e in ops] == [[0], [1], [2], [3]]
        assert ops[0]["uid"] == UID_NAMESPACE  # shard 1's uid 0, lifted
        assert merged["shards"] == [0, 1]
        history = History.from_jsonable(merged["history"])
        check_skeap_history(history, order="min")
        check_element_conservation(history, merged["stored_uids"])

    def test_bot_prefixes_align_where_all_bands_are_empty(self):
        payloads = {
            0: _payload([_del(0, 0, 0, bot=True), _ins(0, 1, 1, 0, 1)],
                        stored=[0]),
            1: _payload([_ins(0, 0, 7, 0, 0), _del(0, 1, 1, ret=0)]),
        }
        merged = merge_shard_histories(payloads, TWO_BANDS)
        ops = merged["history"]["ops"]
        # The ⊥ must come first (everyone else parked empty), then the
        # worst band's suffix, then the best band's.
        assert [tuple(e["op"]) for e in ops] == [
            (0, 0), (NODE_NAMESPACE, 0), (NODE_NAMESPACE, 1), (0, 1),
        ]
        assert merged["stored_uids"] == [0]
        history = History.from_jsonable(merged["history"])
        check_skeap_history(history, order="min")
        check_element_conservation(history, merged["stored_uids"])

    def test_delete_before_insert_fails_loudly(self):
        payloads = {0: _payload([_del(0, 0, 0, ret=0), _ins(0, 1, 1, 0, 1)]),
                    1: _payload([])}
        with pytest.raises(ConsistencyError, match="more deletes than inserts"):
            merge_shard_histories(payloads, TWO_BANDS)

    def test_bot_on_a_nonempty_shard_fails_loudly(self):
        payloads = {0: _payload([_ins(0, 0, 1, 0, 0), _del(0, 1, 1, bot=True)],
                                stored=[0]),
                    1: _payload([])}
        with pytest.raises(ConsistencyError, match="non-empty"):
            merge_shard_histories(payloads, TWO_BANDS)

    def test_heterogeneous_shards_rejected(self):
        payloads = {0: _payload([]), 1: _payload([], proto="seap")}
        with pytest.raises(ConsistencyError, match="heterogeneous"):
            merge_shard_histories(payloads, TWO_BANDS)

    def test_unsettled_ops_rejected(self):
        entry = dict(_ins(0, 0, 1, 0, 0), done=False)
        with pytest.raises(ConsistencyError, match="not settled"):
            merge_shard_histories({0: _payload([entry])}, TWO_BANDS)
        entry = dict(_ins(0, 0, 1, 0, 0), order=None)
        with pytest.raises(ConsistencyError, match="not settled"):
            merge_shard_histories({0: _payload([entry])}, TWO_BANDS)

    def test_namespace_overflow_rejected(self):
        too_big_node = _ins(NODE_NAMESPACE, 0, 1, 0, 0)
        with pytest.raises(ConsistencyError, match="namespace stride"):
            merge_shard_histories({0: _payload([too_big_node])}, TWO_BANDS)
        too_big_uid = _ins(0, 0, 1, UID_NAMESPACE, 0)
        with pytest.raises(ConsistencyError, match="namespace stride"):
            merge_shard_histories({0: _payload([too_big_uid])}, TWO_BANDS)

    def test_empty_and_max_order_rejected(self):
        with pytest.raises(ConsistencyError, match="no shard histories"):
            merge_shard_histories({}, TWO_BANDS)
        payloads = {0: dict(_payload([]), order="max")}
        with pytest.raises(ConsistencyError, match="min"):
            merge_shard_histories(payloads, TWO_BANDS)


# -- in-process federation --------------------------------------------------

async def _start_federation(n_shards=2, *, proto="skeap", n_nodes=4,
                            n_priorities=4, seed=0, lo=1, hi=5):
    """Real router over real in-process services; returns live handles."""
    services = []
    for i in range(n_shards):
        svc = QueueService(
            proto, n_nodes, derive_seed(seed, "svc", i), n_priorities=n_priorities
        )
        await svc.start()
        services.append(svc)
    endpoints = {i: (svc.host, svc.port) for i, svc in enumerate(services)}
    router = QueueRouter(endpoints, even_partition(n_shards, lo, hi), seed=seed)
    await router.start()
    client = await QueueClient.connect(router.host, router.port, client="fedtest")
    return services, router, client


async def _stop_federation(services, router, client):
    await client.aclose()
    await router.aclose()
    for svc in services:
        await svc.aclose()


class TestRouterInProcess:
    def test_inserts_route_by_band_and_deletes_return_global_min(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                homes = {}
                for priority in (1, 2, 3, 4):
                    frame = await client._request(
                        {"op": "insert", "priority": priority}
                    )
                    homes[priority] = frame["shard"]
                assert homes == {1: 0, 2: 0, 3: 1, 4: 1}
                census = await client._request({"op": "census"})
                assert census["stored"] == 4
                assert census["per_shard"] == {"0": 2, "1": 2}
                drained = [
                    (await client.delete_min()).priority for _ in range(4)
                ]
                assert drained == [1, 2, 3, 4]  # global heap order, cross-shard
                assert (await client.delete_min()).bot
            finally:
                await _stop_federation(services, router, client)

        asyncio.run(scenario())

    def test_kselect_walks_the_bands(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                for priority in (1, 1, 2, 4):
                    await client.insert(priority)
                assert (await client.kselect(1)).priority == 1
                assert (await client.kselect(3)).priority == 2  # crosses bands
                assert (await client.kselect(4)).priority == 4
                with pytest.raises(ServiceError, match="out of range"):
                    await client.kselect(5)
            finally:
                await _stop_federation(services, router, client)

        asyncio.run(scenario())

    def test_dead_shard_degrades_to_retryable_unavailable(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                await client.insert(1)
                await client.insert(4)
                await services[1].aclose()  # band [3, +inf) goes dark
                frame = await client._request_raw({"op": "insert", "priority": 4})
                assert frame["status"] == "unavailable"
                assert frame["retryable"] is True
                assert frame["shard"] == 1
                # Survivor band keeps serving both directions.
                ok = await client._request({"op": "insert", "priority": 2})
                assert ok["shard"] == 0
                assert (await client.delete_min()).priority == 1
                assert router.dead_shards == (1,)
                stats = await client.stats()
                assert stats["federation"]["dead"] == [1]
                # A dead shard still gets a stats entry: marked down, with
                # the router-side view of what it was responsible for.
                dead_entry = stats["federation"]["per_shard"]["1"]
                assert dead_entry["alive"] is False
                assert dead_entry["band"] == "[3, +inf)"
                assert dead_entry["count_estimate"] == 1  # the priority-4 insert
                assert dead_entry["endpoint"][1] == services[1].port
                history = await client.history()
                assert history["federation"]["dead"] == [1]
                assert history["federation"]["shards"] == [0]
            finally:
                await _stop_federation(services, router, client)

        asyncio.run(scenario())


class TestRebalance:
    def test_split_rehomes_elements_and_bumps_epoch(self):
        async def scenario():
            services, router, client = await _start_federation()
            extra = None
            try:
                for priority in (1, 2, 3, 4, 4):
                    await client.insert(priority)
                extra = QueueService("skeap", 4, derive_seed(0, "svc", 2),
                                     n_priorities=4)
                await extra.start()
                new_map = router.pmap.split(1, 4, 2)  # [3,+inf) -> [3,4)+[4,+inf)
                summary = await router.rebalance(
                    new_map, new_endpoints={2: (extra.host, extra.port)}
                )
                assert summary == {
                    "epoch": 1, "moved": 3, "drained": [1],
                    "added": [2], "retired": [],
                }
                assert router.rebalances == 1
                census = await client._request({"op": "census"})
                assert census["per_shard"] == {"0": 2, "1": 1, "2": 2}
                # New inserts obey the new map.
                frame = await client._request({"op": "insert", "priority": 4})
                assert frame["shard"] == 2
                drained = [
                    (await client.delete_min()).priority for _ in range(6)
                ]
                assert drained == [1, 2, 3, 4, 4, 4]
                payload = await client.history()
                assert payload["federation"]["epoch"] == 1
                history = History.from_jsonable(payload["history"])
                check_skeap_history(history, order="min")
                check_element_conservation(history, payload["stored_uids"])
            finally:
                await _stop_federation(services, router, client)
                if extra is not None:
                    await extra.aclose()

        asyncio.run(scenario())

    def test_stale_map_rejected(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                same_epoch = even_partition(2, 1, 5)
                with pytest.raises(ServiceError, match="raise the epoch"):
                    await router.rebalance(same_epoch)
                assert router.pmap.epoch == 0  # nothing installed
            finally:
                await _stop_federation(services, router, client)

        asyncio.run(scenario())


# -- connect retry ----------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestConnectRetry:
    def test_retries_absorb_the_spawn_to_listen_race(self):
        async def scenario():
            port = _free_port()
            service = QueueService("skeap", 4, 0, port=port)

            async def late_start():
                await asyncio.sleep(0.3)
                await service.start()

            starter = asyncio.create_task(late_start())
            try:
                client = await QueueClient.connect(
                    "127.0.0.1", port, connect_retries=30, connect_backoff=0.05
                )
                assert client.proto == "skeap"
                await client.aclose()
            finally:
                await starter
                await service.aclose()

        asyncio.run(scenario())

    def test_zero_retries_fails_fast(self):
        async def scenario():
            with pytest.raises(ConnectionRefusedError):
                await QueueClient.connect(
                    "127.0.0.1", _free_port(), connect_retries=0
                )

        asyncio.run(scenario())

    def test_non_refused_errors_propagate_immediately(self, monkeypatch):
        calls = []

        async def explode(*args, **kwargs):
            calls.append(args)
            raise ConnectionResetError("peer reset")

        monkeypatch.setattr(asyncio, "open_connection", explode)

        async def scenario():
            with pytest.raises(ConnectionResetError):
                await QueueClient.connect("127.0.0.1", 1, connect_retries=20)

        asyncio.run(scenario())
        assert len(calls) == 1  # no retry loop for non-ECONNREFUSED failures

    def test_backoff_is_seeded_and_deterministic(self, monkeypatch):
        recorded = []

        async def refuse(*args, **kwargs):
            raise ConnectionRefusedError

        async def note_sleep(delay):
            recorded.append(delay)

        monkeypatch.setattr(asyncio, "open_connection", refuse)
        monkeypatch.setattr(asyncio, "sleep", note_sleep)

        async def scenario():
            with pytest.raises(ConnectionRefusedError):
                await QueueClient.connect(
                    "127.0.0.1", 1,
                    retry_jitter_seed=42, connect_retries=4, connect_backoff=0.05,
                )

        asyncio.run(scenario())
        rng = random.Random(42 ^ 0x5EED)
        expected = [
            rng.uniform(base / 2, base)
            for base in (0.05 * 2 ** min(k, 6) for k in range(4))
        ]
        assert recorded == expected


# -- cross-process acceptance -----------------------------------------------

#: The pinned acceptance mix: same mix and seeds for both topologies.
_ACCEPTANCE_SEEDS = (13, 14, 15)


def _acceptance_spec(seed: int) -> LoadSpec:
    return LoadSpec(
        n_clients=2, ops_per_client=30, concurrency=1,
        priorities=fixed_priorities(8), seed=seed,
    )


async def _federated_loadtest(controller, pmap, spec, *, seed):
    async with QueueRouter(controller.endpoints(), pmap, seed=seed) as router:
        return await run_loadtest(router.host, router.port, spec)


async def _best_of_trials(host, port) -> LoadReport:
    """Best-of-N throughput over the pinned seeds (every trial must pass
    its checks; the max smooths wave-coalescing luck on a 1-core box)."""
    reports = []
    for seed in _ACCEPTANCE_SEEDS:
        report = await run_loadtest(host, port, _acceptance_spec(seed))
        assert "conservation" in report.checks_passed
        reports.append(report)
    return max(reports, key=lambda r: r.throughput)


class TestFederationAcceptance:
    def test_skeap_federation_beats_a_single_shard_of_equal_size(self):
        """4 shards × 16 nodes vs one 64-node service, same seeded mix.

        On one core the federation cannot win by parallelism — it wins
        because at low concurrency the single service pays a full Θ(64)
        pump wave per op while each shard's wave costs Θ(16).
        """
        federation = ShardController(
            proto="skeap", n_nodes=16, seed=13, n_priorities=8
        )
        try:
            federation.spawn_many(range(4))
            pmap = even_partition(4, *default_band_range("skeap", 8))

            async def run_fed():
                async with QueueRouter(
                    federation.endpoints(), pmap, seed=13
                ) as router:
                    return await _best_of_trials(router.host, router.port)

            fed_report = asyncio.run(run_fed())
        finally:
            federation.shutdown()
        assert fed_report.checks_passed == [
            "client-vs-server", "skeap(SC+heap+serial)", "conservation",
        ]
        assert fed_report.history_payload["federation"]["epoch"] == 0
        assert fed_report.completed == 60

        single = ShardController(proto="skeap", n_nodes=64, seed=13, n_priorities=8)
        try:
            single.spawn(0)
            host, port = single.endpoints()[0]
            single_report = asyncio.run(_best_of_trials(host, port))
        finally:
            single.shutdown()

        # Calibrated headroom: ~67-77 vs ~52 ops/s on the CI box (the
        # single service tops out at 2-way wave coalescing over Θ(64)
        # rounds); the 1.05 margin keeps the assertion meaningful
        # without being flaky.
        assert fed_report.throughput > single_report.throughput * 1.05, (
            f"federation {fed_report.throughput:.1f} ops/s did not beat "
            f"single-shard {single_report.throughput:.1f} ops/s"
        )

    def test_seap_federation_passes_the_full_checker_stack(self):
        spec = LoadSpec(
            n_clients=3, ops_per_client=20, concurrency=2,
            priorities=uniform_priorities(0, 1_000_000), seed=7,
        )
        controller = ShardController(proto="seap", n_nodes=8, seed=7)
        try:
            controller.spawn_many(range(2))
            pmap = even_partition(2, *default_band_range("seap"))
            report = asyncio.run(
                _federated_loadtest(controller, pmap, spec, seed=7)
            )
        finally:
            controller.shutdown()
        assert report.checks_passed == [
            "client-vs-server", "seap(serializable+heap)", "conservation",
        ]
        history = History.from_jsonable(report.history_payload["history"])
        check_seap_history(history)


class TestChaosShardKill:
    def test_sigkill_degrades_cleanly_with_no_silent_survivor_loss(self):
        controller = ShardController(
            proto="skeap", n_nodes=6, seed=3, n_priorities=9
        )
        try:
            controller.spawn_many(range(3))
            pmap = even_partition(3, 1, 10)  # (-inf,4), [4,7), [7,+inf)
            asyncio.run(self._scenario(controller, pmap))
        finally:
            controller.shutdown()

    async def _scenario(self, controller, pmap):
        acked = []  # (op_id, shard) pairs the router acknowledged
        async with QueueRouter(controller.endpoints(), pmap, seed=3) as router:
            client = await QueueClient.connect(
                router.host, router.port, client="chaos"
            )
            try:
                for priority in (*range(1, 10), *range(1, 10)):
                    frame = await client._request(
                        {"op": "insert", "priority": priority}
                    )
                    acked.append((tuple(frame["op"]), frame["shard"]))
                for _ in range(4):
                    frame = await client._request({"op": "deletemin"})
                    acked.append((tuple(frame["op"]), frame["shard"]))

                # Pipeline a burst and SIGKILL the worst-band shard while
                # it is in flight: every response must still arrive, as
                # either an ack or a clean retryable error — never a hang.
                burst = [
                    asyncio.create_task(
                        client._request_raw({"op": "insert", "priority": p})
                    )
                    for p in (1, 4, 7, 8, 9, 2)
                ]
                controller.kill(2)
                frames = await asyncio.gather(*burst)
                for frame in frames:
                    if frame["status"] == "ok":
                        acked.append((tuple(frame["op"]), frame["shard"]))
                    else:
                        assert frame["status"] == "unavailable"
                        assert frame["retryable"] is True
                        assert frame["shard"] == 2

                # The death is loud everywhere: controller and router.
                assert controller.deaths() == [2]
                health = controller.health()[2]
                assert not health["alive"] and health["returncode"] == -9
                frame = await client._request_raw(
                    {"op": "insert", "priority": 9}
                )
                assert frame["status"] == "unavailable"
                assert frame["shard"] == 2
                assert router.dead_shards == (2,)

                # Survivors keep serving both directions.
                ok = await client._request({"op": "insert", "priority": 1})
                assert ok["shard"] == 0
                assert not (await client.delete_min()).bot

                # No silent loss: every op acknowledged on a survivor is
                # in the merged history, and the merge still certifies.
                payload = await client.history()
                assert payload["federation"]["dead"] == [2]
                assert payload["federation"]["shards"] == [0, 1]
                merged_ids = {
                    tuple(e["op"]) for e in payload["history"]["ops"]
                }
                survivor_acked = [
                    op for op, shard in acked if shard in (0, 1)
                ]
                assert survivor_acked  # the run did exercise survivors
                missing = [op for op in survivor_acked if op not in merged_ids]
                assert not missing, f"acknowledged ops vanished: {missing}"
                history = History.from_jsonable(payload["history"])
                check_skeap_history(history, order="min")
                check_element_conservation(history, payload["stored_uids"])
            finally:
                await client.aclose()
