"""Lean vs detail metrics: identical numbers, different breadth."""

from __future__ import annotations

from repro import SeapHeap, SkeapHeap
from repro.sim import Message, MetricsCollector


def _core_numbers(metrics):
    return (
        metrics.rounds,
        metrics.messages,
        metrics.bits,
        metrics.max_message_bits,
        metrics.congestion,
        list(metrics.congestion_by_round),
        list(metrics.max_bits_by_round),
    )


def _drive_skeap(detail: bool):
    heap = SkeapHeap(
        n_nodes=8, n_priorities=3, seed=11, record_history=False,
        metrics_detail=detail,
    )
    for i in range(24):
        heap.insert(priority=1 + i % 3, at=i % 8)
    heap.settle()
    for i in range(12):
        heap.delete_min(at=i % 8)
    heap.settle()
    return heap


def _drive_seap(detail: bool):
    heap = SeapHeap(n_nodes=6, seed=13, metrics_detail=detail)
    for i in range(18):
        heap.insert(priority=1 + 7 * i, at=i % 6)
    heap.settle()
    for i in range(9):
        heap.delete_min(at=i % 6)
    heap.settle()
    return heap


class TestLeanDetailParity:
    """Both modes observe the same message stream; every counter the
    shape checks read must be bit-for-bit equal."""

    def test_skeap_workload_identical_numbers(self):
        lean = _drive_skeap(detail=False)
        full = _drive_skeap(detail=True)
        assert _core_numbers(lean.metrics) == _core_numbers(full.metrics)

    def test_seap_workload_identical_numbers(self):
        lean = _drive_seap(detail=False)
        full = _drive_seap(detail=True)
        assert _core_numbers(lean.metrics) == _core_numbers(full.metrics)

    def test_lean_mode_has_no_breakdowns(self):
        lean = _drive_skeap(detail=False)
        assert lean.metrics.action_counts is None
        assert lean.metrics.owner_totals is None
        assert lean.metrics.owner_action_counts is None

    def test_detail_mode_populates_breakdowns(self):
        full = _drive_skeap(detail=True)
        assert sum(full.metrics.action_counts.values()) == full.metrics.messages
        assert sum(full.metrics.owner_totals.values()) == full.metrics.messages


class TestWindowExactMaxima:
    def _msg(self, dest=0, bits=1):
        m = Message(sender=9, dest=dest, action="x", payload=None)
        m.size_bits = bits
        return m

    def test_window_maxima_are_per_window_not_cumulative(self):
        mc = MetricsCollector()
        # Round 0: heavy (5 messages to one owner, 100-bit peak).
        for _ in range(5):
            mc.record_delivery(self._msg(bits=100))
        mc.end_round()
        before = mc.snapshot()
        # Round 1: light (2 messages, 40-bit peak).
        for _ in range(2):
            mc.record_delivery(self._msg(bits=40))
        mc.end_round()
        window = mc.window(before)
        assert window.rounds == 1 and window.messages == 2
        assert window.congestion == 2
        assert window.max_message_bits == 40
        # diff() between live snapshots of one collector recovers the
        # same exact window maxima from the per-round history.
        diff = mc.snapshot().diff(before)
        assert diff.congestion == 2
        assert diff.max_message_bits == 40
        assert diff.rounds == window.rounds
        assert diff.messages == window.messages
        assert diff.bits == window.bits

    def test_diff_of_detached_snapshots_falls_back_to_cumulative(self):
        import pickle

        mc = MetricsCollector()
        for _ in range(5):
            mc.record_delivery(self._msg(bits=100))
        mc.end_round()
        before = mc.snapshot()
        mc.record_delivery(self._msg(bits=40))
        mc.end_round()
        after = mc.snapshot()
        # Round-tripping through pickle drops the collector reference, so
        # the maxima degrade to the (documented) cumulative upper bound.
        detached_before = pickle.loads(pickle.dumps(before))
        detached_after = pickle.loads(pickle.dumps(after))
        diff = detached_after.diff(detached_before)
        assert diff.congestion == 5
        assert diff.max_message_bits == 100
        assert diff.messages == 1
        # Mixed provenance (live later, detached earlier) must not
        # misattribute history either.
        assert after.diff(detached_before).congestion == 5

    def test_diff_includes_open_round_peaks(self):
        mc = MetricsCollector()
        mc.record_delivery(self._msg(bits=80))
        mc.end_round()
        before = mc.snapshot()
        for _ in range(3):
            mc.record_delivery(self._msg(bits=16))
        # No end_round(): the in-progress round still counts, as window().
        diff = mc.snapshot().diff(before)
        assert diff.congestion == 3
        assert diff.max_message_bits == 16

    def test_window_includes_open_round(self):
        mc = MetricsCollector()
        mc.end_round()
        before = mc.snapshot()
        for _ in range(3):
            mc.record_delivery(self._msg(bits=64))
        # No end_round(): the in-progress round still counts.
        window = mc.window(before)
        assert window.congestion == 3
        assert window.max_message_bits == 64

    def test_empty_window_is_zero(self):
        mc = MetricsCollector()
        mc.record_delivery(self._msg(bits=10))
        mc.end_round()
        before = mc.snapshot()
        window = mc.window(before)
        assert window.congestion == 0
        assert window.max_message_bits == 0
        assert window.messages == 0


class TestDeregisterAfterDrain:
    def test_deregister_allowed_once_channel_empties(self):
        from repro.sim import ProtocolNode, SyncRunner

        class Sink(ProtocolNode):
            def on_ping(self, sender, value):
                pass

        runner = SyncRunner()
        a, b = Sink(0), Sink(1)
        runner.register_all([a, b])
        a.send(1, "ping", value=0)
        runner.step()  # delivers; in-flight count returns to zero
        runner.deregister(1)
        assert 1 not in runner.nodes
        assert 1 not in runner._inflight_by_dest
        assert 1 not in runner._wake
