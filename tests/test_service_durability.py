"""The durability-plane test battery: codec, torn tails, recovery, chaos.

Five layers, cheapest first:

* **record codec** — property-based round-trips of the length-prefixed,
  CRC32-checksummed journal record format;
* **torn writes** — a journal truncated at *every* byte offset decodes
  to a clean prefix of whole records, never raises, never half-applies;
* **recovery units** — snapshot + segment replay through
  :func:`~repro.service.durability.recover`: op-id dedup, fallback past
  a corrupt newest snapshot, absent-state handling;
* **live restart** — a durable :class:`QueueService` is torn down and
  rebooted from its journal directory; elements, values, and FIFO order
  survive, the spliced cross-generation history passes the unmodified
  checker stack, and the recovery certificate is surfaced in ``stats``;
* **wire chaos + revive** — the PR 2 fault-plan vocabulary applied to a
  live client socket (drop/delay/dup), the unavailable-retry loop, and
  the router's restart-revive path rebuilding its element counts from
  the recovered shard's census.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DurabilityError
from repro.semantics.history import History
from repro.service import LoadSpec, QueueClient, QueueService, run_loadtest
from repro.service.durability import (
    RECORD_HEADER,
    DurabilityConfig,
    DurabilityPlane,
    Journal,
    certify_recovery,
    decode_records,
    encode_record,
    journal_segments,
    recover,
    snapshot_files,
    write_snapshot,
)
from repro.service.partition import even_partition
from repro.service.router import QueueRouter
from repro.sim.faults import DELAY, DROP, DUP, FaultEvent, FaultPlan


def _entry(n, s, kind="ins", priority=1, uid=None, order=(0, 1)):
    return {
        "op": [n, s], "kind": kind, "priority": priority,
        "uid": (n << 32) | s if uid is None else uid,
        "order": list(order), "ret": None, "bot": False, "done": True,
    }


# -- record codec -----------------------------------------------------------

_json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-(2**53), 2**53),
    st.text(max_size=20),
)
_json_values = st.recursive(
    _json_scalars,
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=10,
)
_entries = st.dictionaries(st.text(max_size=8), _json_values, max_size=6)


class TestRecordCodec:
    @given(entries=st.lists(_entries, max_size=8))
    @settings(max_examples=40)
    def test_round_trip(self, entries):
        blob = b"".join(encode_record(e) for e in entries)
        records, offset = decode_records(blob)
        assert records == entries
        assert offset == len(blob)

    def test_header_layout(self):
        data = encode_record({"a": 1})
        body = json.dumps({"a": 1}, separators=(",", ":")).encode()
        assert len(data) == RECORD_HEADER + len(body)
        assert int.from_bytes(data[:4], "big") == len(body)

    def test_oversized_record_refused(self):
        with pytest.raises(DurabilityError):
            encode_record({"blob": "x" * (1 << 26)})


class TestTornWrites:
    @given(cut=st.integers(0, 400), n_records=st.integers(1, 6))
    @settings(max_examples=60)
    def test_any_truncation_yields_a_clean_prefix(self, cut, n_records):
        entries = [_entry(0, s, priority=s % 5) for s in range(n_records)]
        blob = b"".join(encode_record(e) for e in entries)
        records, offset = decode_records(blob[: min(cut, len(blob))])
        # Whole records only, in order, and the clean offset is exactly
        # their encoded length — the torn tail is dropped, not guessed at.
        assert records == entries[: len(records)]
        assert offset == len(b"".join(encode_record(e) for e in records))

    def test_every_byte_offset_of_a_real_journal(self, tmp_path):
        path = tmp_path / "journal-000000.log"
        journal = Journal(path, fsync="off")
        entries = [_entry(1, s, kind="ins" if s % 2 else "del") for s in range(5)]
        for e in entries:
            journal.append(e)
        journal.commit()
        journal.close()
        blob = path.read_bytes()
        for cut in range(len(blob) + 1):
            records, offset = decode_records(blob[:cut])
            assert records == entries[: len(records)]
            assert offset <= cut

    def test_bit_rot_stops_cleanly_at_the_damage(self):
        entries = [_entry(0, s) for s in range(3)]
        blob = bytearray(b"".join(encode_record(e) for e in entries))
        second = len(encode_record(entries[0]))
        blob[second + RECORD_HEADER] ^= 0xFF  # corrupt record 1's body
        records, offset = decode_records(bytes(blob))
        assert records == entries[:1]
        assert offset == second

    def test_garbage_tail_after_valid_records(self):
        blob = encode_record(_entry(0, 0)) + b"\xde\xad\xbe\xef" * 5
        records, offset = decode_records(blob)
        assert len(records) == 1
        assert offset == len(encode_record(_entry(0, 0)))


# -- recovery units ---------------------------------------------------------


class TestRecover:
    def test_missing_and_empty_dirs_recover_to_none(self, tmp_path):
        assert recover(tmp_path / "nope") is None
        empty = tmp_path / "empty"
        empty.mkdir()
        assert recover(empty) is None

    def test_snapshot_plus_tail_dedups_op_ids(self, tmp_path):
        base = [_entry(0, 0, order=(0, 1)), _entry(0, 1, order=(0, 2))]
        tail_only = _entry(0, 2, order=(0, 3))
        write_snapshot(tmp_path, 4, {
            "version": 1, "meta": {"generation": 0, "proto": "skeap"},
            "history": {"ops": base},
            "census": sorted(e["uid"] for e in base),
            "state": {},
        })
        journal = Journal(tmp_path / "journal-000004.log", fsync="off")
        journal.append(base[1])  # also present in the snapshot: must apply once
        journal.append(tail_only)
        journal.commit()
        journal.close()
        result = recover(tmp_path)
        assert result is not None
        assert [tuple(e["op"]) for e in result.records] == [(0, 0), (0, 1), (0, 2)]
        assert result.replayed_ops == 1  # only the genuinely new tail op
        assert result.snapshot_ops == 2
        assert sorted(s["uid"] for s in result.survivors) == sorted(
            e["uid"] for e in base + [tail_only]
        )
        assert result.seq_base == 3

    def test_survivors_are_ack_order_independent(self):
        # Under concurrency a delete can be acked — and journaled — before
        # the insert whose element it returned; the survivor derivation
        # must match them set-wise, not by record position.
        from repro.service.durability import _derive_survivors

        ins = _entry(1, 1, order=(0, 2))
        dele = {
            "op": [0, 1], "kind": "del", "priority": None, "uid": None,
            "order": [0, 1], "ret": ins["uid"], "bot": False, "done": True,
        }
        assert _derive_survivors([dele, ins]) == []
        assert _derive_survivors([ins, dele]) == []

    def test_corrupt_newest_snapshot_falls_back_to_older(self, tmp_path):
        ops = [_entry(0, 0)]
        write_snapshot(tmp_path, 1, {
            "version": 1, "meta": {"generation": 0},
            "history": {"ops": ops}, "census": [ops[0]["uid"]], "state": {},
        })
        (tmp_path / "snapshot-000002.json").write_text("{not json")
        result = recover(tmp_path)
        assert result is not None
        assert result.snapshot_index == 1
        assert len(result.records) == 1

    def test_segments_only_recovery(self, tmp_path):
        journal = Journal(tmp_path / "journal-000000.log", fsync="off",
                          header={"generation": 0, "proto": "skeap"})
        ins = _entry(0, 0, order=(0, 1))
        dele = {
            "op": [0, 1], "kind": "del", "priority": None, "uid": None,
            "order": [0, 2], "ret": ins["uid"], "bot": False, "done": True,
        }
        journal.append(ins)
        journal.append(dele)
        journal.commit()
        journal.close()
        result = recover(tmp_path)
        assert result is not None
        assert result.snapshot_index is None
        assert result.survivors == []  # the one insert was deleted
        assert result.meta.get("proto") == "skeap"

    def test_plane_rotation_prunes_and_recovers(self, tmp_path):
        config = DurabilityConfig(dir=tmp_path, fsync="off", snapshot_every=2)
        plane = DurabilityPlane(config, meta={"proto": "skeap"})
        assert plane.recover() is None
        plane.begin([], [])
        a, b = _entry(0, 0, order=(0, 1)), _entry(0, 1, order=(0, 2))
        plane.append_batch([a, b])
        plane.rotate([a, b], sorted([a["uid"], b["uid"]]))
        # Rotation leaves exactly one snapshot + one open segment behind.
        assert [i for i, _ in snapshot_files(tmp_path)] == [plane.segment]
        assert [i for i, _ in journal_segments(tmp_path)] == [plane.segment]
        plane.close()
        result = recover(tmp_path)
        assert result is not None
        assert len(result.records) == 2 and result.replayed_ops == 0


# -- live restart -----------------------------------------------------------


async def _drive(client, inserts, deletes):
    out = []
    for priority, value in inserts:
        out.append(await client.insert(priority, value))
    for _ in range(deletes):
        out.append(await client.delete_min())
    return out


def _durable(tmp_path, proto, **kw):
    return QueueService(
        proto, n_nodes=4, seed=11,
        durability=DurabilityConfig(dir=tmp_path, fsync="off", **kw),
    )


class TestServiceRestart:
    def test_skeap_elements_and_values_survive_restart(self, tmp_path):
        async def generation_0():
            async with _durable(tmp_path, "skeap", snapshot_every=4) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                await _drive(
                    client,
                    [(1, "a"), (2, "b"), (3, "c"), (1, "d"), (2, "e")],
                    deletes=2,
                )
                stats = await client.stats()
                await client.aclose()
                return stats

        async def generation_1():
            async with _durable(tmp_path, "skeap", snapshot_every=4) as svc:
                assert svc.recovery is not None
                assert svc.recovery["generation"] == 1
                assert "conservation" in svc.recovery["checks"]
                client = await QueueClient.connect(svc.host, svc.port)
                stats = await client.stats()
                drained = []
                while True:
                    result = await client.delete_min()
                    if result.bot:
                        break
                    drained.append((result.priority, result.value))
                payload = await client.history()
                await client.aclose()
                return stats, drained, payload

        stats0 = asyncio.run(generation_0())
        assert stats0["recovery"]["state"] == "serving"
        stats1, drained, payload = asyncio.run(generation_1())
        assert stats1["recovery"]["generation"] == 1
        assert stats1["durability"]["generation"] == 1
        # Two mins were taken in gen 0 (priorities 1, 1); the survivors
        # drain in priority-then-FIFO order with their original values.
        assert drained == [(2, "b"), (2, "e"), (3, "c")]
        # The served durable history splices both generations and still
        # satisfies the wire-history invariants (unique op ids and uids).
        # Gen 1 contributed the 3 drains plus the terminating ⊥ delete.
        history = History.from_jsonable(payload["history"])
        assert len(history.ops) == stats0["ops_completed"] + len(drained) + 1

    def test_seap_restart_certifies_and_orders(self, tmp_path):
        async def generation_0():
            async with _durable(tmp_path, "seap", snapshot_every=3) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                for p in (500, 7, 123456, 42, 9):
                    await client.insert(p, f"v{p}")
                await client.aclose()

        async def generation_1():
            async with _durable(tmp_path, "seap", snapshot_every=3) as svc:
                assert svc.recovery is not None
                assert svc.recovery["elements_restored"] == 5
                client = await QueueClient.connect(svc.host, svc.port)
                drained = []
                for _ in range(5):
                    drained.append((await client.delete_min()).priority)
                await client.aclose()
                return drained

        asyncio.run(generation_0())
        assert asyncio.run(generation_1()) == [7, 9, 42, 500, 123456]

    def test_third_generation_still_certifies(self, tmp_path):
        async def boot(expect_gen, ops):
            async with _durable(tmp_path, "skeap", snapshot_every=100) as svc:
                assert (svc.recovery or {"generation": 0})["generation"] == expect_gen
                client = await QueueClient.connect(svc.host, svc.port)
                await _drive(client, ops, deletes=1)
                await client.aclose()
                return svc.recovery

        asyncio.run(boot(0, [(1, "x"), (2, "y")]))
        asyncio.run(boot(1, [(3, "z")]))
        recovery = asyncio.run(boot(2, [(1, "w")]))
        assert recovery["generation"] == 2
        result = recover(tmp_path)
        assert certify_recovery(result)  # offline pass over all three gens

    def test_meta_mismatch_is_refused(self, tmp_path):
        async def wrong_proto():
            async with _durable(tmp_path, "skeap") as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                await client.insert(1, "x")
                await client.aclose()
            _durable(tmp_path, "seap")

        with pytest.raises(DurabilityError, match="proto"):
            asyncio.run(wrong_proto())

    def test_durable_loadtest_passes_checks(self, tmp_path):
        async def scenario():
            async with _durable(tmp_path, "skeap", snapshot_every=20) as svc:
                return await run_loadtest(
                    svc.host, svc.port,
                    LoadSpec(n_clients=3, ops_per_client=20, concurrency=2, seed=5),
                )

        report = asyncio.run(scenario())
        assert report.completed == 60
        assert "skeap(SC+heap+serial)" in report.checks_passed
        assert "conservation" in report.checks_passed


# -- wire chaos + revive ----------------------------------------------------


class TestClientChaos:
    def test_reliable_drop_delay_dup_still_complete(self, tmp_path):
        plan = FaultPlan(events=[
            FaultEvent(kind=DROP, src=1, nth=0),
            FaultEvent(kind=DELAY, src=1, nth=1, hold=3.0),
            FaultEvent(kind=DUP, src=1, nth=2),
            FaultEvent(kind=DROP, src=2, nth=0),  # other channel: not ours
        ], reliable=True)

        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=3) as svc:
                client = await QueueClient.connect(
                    svc.host, svc.port,
                    faults=plan, fault_src=1, fault_time_scale=0.001,
                )
                r0 = await client.insert(1, "dropped-then-retransmitted")
                r1 = await client.insert(2, "delayed")
                r2 = await client.delete_min()
                stats = (client.chaos_dropped, client.chaos_retransmits,
                         client.chaos_lost, client.chaos_delayed,
                         client.chaos_dups_suppressed)
                await client.aclose()
                return r0, r1, r2, stats

        r0, r1, r2, stats = asyncio.run(scenario())
        assert r0.uid is not None and r1.uid is not None
        assert r2.uid == r0.uid  # min is the dropped-then-resent insert
        assert stats == (1, 1, 0, 1, 1)

    def test_unreliable_drop_loses_the_frame(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=DROP, src=1, nth=0)], reliable=False
        )

        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=3) as svc:
                client = await QueueClient.connect(
                    svc.host, svc.port,
                    faults=plan, fault_src=1, fault_time_scale=0.001,
                )
                with pytest.raises((asyncio.TimeoutError, TimeoutError)):
                    await client.insert(1, "lost", timeout=0.3)
                lost = client.chaos_lost
                # The channel itself is fine: the next op goes through.
                result = await client.insert(2, "after")
                await client.aclose()
                return lost, result

        lost, result = asyncio.run(scenario())
        assert lost == 1 and result.uid is not None

    def test_loadtest_threads_fault_plan_to_clients(self):
        plan = FaultPlan(events=[
            FaultEvent(kind=DELAY, src=i + 1, nth=0, hold=1.0) for i in range(2)
        ], reliable=True)

        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=9) as svc:
                return await run_loadtest(
                    svc.host, svc.port,
                    LoadSpec(n_clients=2, ops_per_client=8, seed=2,
                             fault_plan=plan, fault_scale=0.001),
                )

        report = asyncio.run(scenario())
        assert report.completed == 16
        assert "conservation" in report.checks_passed


class TestRouterRevive:
    def test_revive_rebuilds_counts_from_recovered_census(self, tmp_path):
        pmap = even_partition(2, 1, 9)  # shard 0: (-inf, 5), shard 1: [5, +inf)

        async def scenario():
            dirs = [tmp_path / "shard-0", tmp_path / "shard-1"]
            svcs = [
                QueueService(
                    "skeap", n_nodes=4, seed=s, n_priorities=8,
                    durability=DurabilityConfig(dir=dirs[s], fsync="off"),
                )
                for s in range(2)
            ]
            for svc in svcs:
                await svc.start()
            endpoints = {s: (svc.host, svc.port) for s, svc in enumerate(svcs)}
            async with QueueRouter(endpoints, pmap, seed=1) as router:
                client = await QueueClient.connect(
                    router.host, router.port, retry_unavailable=8
                )
                for p in (1, 2, 5, 7, 1, 6):  # both bands populated
                    await client.insert(p, f"v{p}")
                low_counts = router._counts[0]

                # SIGKILL stand-in: drop shard 0 without a clean goodbye.
                await svcs[0].aclose()

                # Restart it from its journal and revive the upstream.
                replacement = QueueService(
                    "skeap", n_nodes=4, seed=0, n_priorities=8,
                    durability=DurabilityConfig(dir=dirs[0], fsync="off"),
                )
                await replacement.start()
                assert replacement.recovery is not None
                info = await router.revive(
                    0, endpoint=(replacement.host, replacement.port)
                )
                assert info["census"] == low_counts
                assert router._counts[0] == low_counts
                assert router.revives == 1

                # Routing works across the revived shard: global min order.
                drained = []
                for _ in range(6):
                    drained.append((await client.delete_min()).priority)
                assert drained == sorted(drained) == [1, 1, 2, 5, 6, 7]
                await client.aclose()
                await replacement.aclose()
            await svcs[1].aclose()

        asyncio.run(scenario())
