"""Tests for the simulation kernel: messages, metrics, rng, both runners."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.element import Element
from repro.errors import ProtocolError, SimulationError
from repro.sim import (
    AsyncRunner,
    Message,
    MetricsCollector,
    ProtocolNode,
    PseudoRandomHash,
    RngRegistry,
    SyncRunner,
    adversarial_delay,
    derive_seed,
    payload_size_bits,
    uniform_delay,
)


# -- payload sizing -----------------------------------------------------------


class TestPayloadSize:
    def test_none_is_one_bit(self):
        assert payload_size_bits(None) == 1

    def test_bool_is_one_bit(self):
        assert payload_size_bits(True) == 1

    def test_int_width(self):
        assert payload_size_bits(0) == 2
        assert payload_size_bits(255) == 9

    def test_float_is_64(self):
        assert payload_size_bits(0.5) == 64

    def test_element_delegates(self):
        e = Element(3, 9)
        assert payload_size_bits(e) == e.size_bits()

    def test_containers_sum_members(self):
        flat = payload_size_bits(7)
        assert payload_size_bits([7, 7]) == 2 * flat + 4

    def test_dict_counts_keys_and_values(self):
        assert payload_size_bits({"k": 1}) > payload_size_bits(1)

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_size_bits(object())

    @given(st.integers(0, 1 << 60))
    def test_int_monotone_in_magnitude(self, x):
        assert payload_size_bits(2 * x + 1) >= payload_size_bits(x)

    def test_message_size_computed(self):
        msg = Message(sender=0, dest=1, action="a", payload={"x": 3})
        assert msg.size_bits > 8


# -- rng ------------------------------------------------------------------------


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_distinguishes_paths(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_stream_is_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(5).tolist()
        b = reg.stream("b").random(5).tolist()
        assert a != b

    def test_same_seed_same_draws(self):
        a = RngRegistry(9).stream("s").random(4).tolist()
        b = RngRegistry(9).stream("s").random(4).tolist()
        assert a == b

    def test_hash_unit_range_and_determinism(self):
        h = PseudoRandomHash(3)
        vals = [h.unit("k", i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert vals == [PseudoRandomHash(3).unit("k", i) for i in range(200)]

    def test_hash_roughly_uniform(self):
        h = PseudoRandomHash(5)
        vals = [h.unit(i) for i in range(2000)]
        mean = sum(vals) / len(vals)
        assert 0.45 < mean < 0.55

    def test_namespaces_independent(self):
        assert PseudoRandomHash(1, "a").unit(0) != PseudoRandomHash(1, "b").unit(0)

    def test_spawn_changes_root(self):
        reg = RngRegistry(7)
        child = reg.spawn("c")
        assert child.root_seed != reg.root_seed


# -- metrics -------------------------------------------------------------------------


class TestMetrics:
    def _msg(self, dest=0, bits=None, action="x"):
        m = Message(sender=9, dest=dest, action=action, payload={"v": 1})
        if bits:
            m.size_bits = bits
        return m

    def test_counts_and_bits(self):
        mc = MetricsCollector()
        mc.record_delivery(self._msg(bits=100))
        mc.record_delivery(self._msg(bits=50))
        assert mc.messages == 2
        assert mc.bits == 150
        assert mc.max_message_bits == 100

    def test_congestion_per_owner_per_round(self):
        mc = MetricsCollector(owner_of=lambda i: i // 3)
        for _ in range(4):
            mc.record_delivery(self._msg(dest=1))
        mc.record_delivery(self._msg(dest=2))  # same owner 0
        mc.record_delivery(self._msg(dest=5))  # owner 1
        mc.end_round()
        assert mc.congestion == 5

    def test_congestion_window(self):
        mc = MetricsCollector()
        mc.record_delivery(self._msg())
        mc.end_round()
        for _ in range(7):
            mc.record_delivery(self._msg())
        mc.end_round()
        assert mc.congestion_between(0, 1) == 1
        assert mc.congestion_between(1, 2) == 7

    def test_snapshot_diff(self):
        mc = MetricsCollector()
        mc.record_delivery(self._msg(bits=10))
        mc.end_round()
        s1 = mc.snapshot()
        mc.record_delivery(self._msg(bits=20))
        mc.end_round()
        d = mc.snapshot().diff(s1)
        assert d.rounds == 1 and d.messages == 1 and d.bits == 20

    def test_marks(self):
        mc = MetricsCollector()
        mc.end_round()
        mc.mark("phase")
        assert mc.marks == [("phase", 1)]


# -- nodes and runners ----------------------------------------------------------------


class Echo(ProtocolNode):
    """Replies to ping with pong; counts activations."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.activations = 0
        self.pongs: list[int] = []

    def on_activate(self):
        self.activations += 1

    def on_ping(self, sender, value):
        self.send(sender, "pong", value=value + 1)

    def on_pong(self, sender, value):
        self.pongs.append(value)


class Ticker(Echo):
    """An Echo that always declares activation work (dense-style node)."""

    def wants_activation(self):
        return True


class TestProtocolNode:
    def test_unknown_action_raises(self):
        runner = SyncRunner()
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        a.send(1, "nonsense")
        with pytest.raises(ProtocolError):
            runner.step()

    def test_double_bind_rejected(self):
        runner = SyncRunner()
        node = Echo(0)
        runner.register(node)
        with pytest.raises(ProtocolError):
            node.bind(runner)

    def test_unbound_node_cannot_send(self):
        with pytest.raises(ProtocolError):
            Echo(0).send(1, "ping", value=0)


class TestSyncRunner:
    def test_messages_delivered_next_round(self):
        runner = SyncRunner()
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        a.send(1, "ping", value=10)
        runner.step()  # ping delivered, pong sent
        assert a.pongs == []
        runner.step()  # pong delivered
        assert a.pongs == [11]

    def test_sparse_activation_skips_idle_nodes(self):
        """Idle nodes activate once (bootstrap) then leave the hot loop;
        nodes declaring work via wants_activation keep being activated."""
        runner = SyncRunner()
        idle = [Echo(i) for i in range(3)]
        busy = Ticker(3)
        runner.register_all([*idle, busy])
        for _ in range(5):
            runner.step()
        assert all(n.activations == 1 for n in idle)
        assert busy.activations == 5

    def test_message_receipt_reactivates(self):
        """A parked node is woken by an incoming message the next round."""
        runner = SyncRunner()
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        runner.step()  # bootstrap activation, then both park
        runner.step()
        assert b.activations == 1
        a.send(1, "ping", value=0)
        runner.step()  # deliver ping -> b handles it and is woken
        assert b.activations == 2

    def test_explicit_wake_reactivates(self):
        runner = SyncRunner()
        node = Echo(0)
        runner.register(node)
        runner.step()
        runner.step()
        assert node.activations == 1
        node.request_activation()
        runner.step()
        assert node.activations == 2

    def test_unknown_dest_rejected(self):
        runner = SyncRunner()
        runner.register(Echo(0))
        with pytest.raises(SimulationError):
            runner.nodes[0].send(99, "ping", value=0)

    def test_duplicate_registration_rejected(self):
        runner = SyncRunner()
        runner.register(Echo(0))
        with pytest.raises(SimulationError):
            runner.register(Echo(0))

    def test_run_until_bound(self):
        runner = SyncRunner()
        runner.register(Echo(0))
        with pytest.raises(SimulationError):
            runner.run_until(lambda: False, max_rounds=5)

    def test_quiescence(self):
        runner = SyncRunner()
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        assert runner.is_quiescent()
        a.send(1, "ping", value=0)
        assert not runner.is_quiescent()
        runner.run_until_quiescent()
        assert runner.is_quiescent() and a.pongs

    def test_deregister_blocks_in_flight(self):
        runner = SyncRunner()
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        a.send(1, "ping", value=0)
        with pytest.raises(SimulationError):
            runner.deregister(1)

    def test_deterministic_given_seed(self):
        def run(seed):
            runner = SyncRunner(seed=seed)
            nodes = [Echo(i) for i in range(4)]
            runner.register_all(nodes)
            for i in range(1, 4):
                nodes[0].send(i, "ping", value=i)
            runner.step()
            runner.step()
            return nodes[0].pongs

        assert run(3) == run(3)


class TestAsyncRunner:
    def test_ping_pong_completes(self):
        runner = AsyncRunner(seed=1)
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        a.send(1, "ping", value=5)
        runner.run_until(lambda: bool(a.pongs), max_time=100)
        assert a.pongs == [6]

    def test_nonfifo_reordering_possible(self):
        """With random delays, sends can arrive out of order."""
        runner = AsyncRunner(seed=4, delay_fn=uniform_delay(0.1, 5.0))

        class Sink(ProtocolNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.seen = []

            def on_item(self, sender, value):
                self.seen.append(value)

        class Burst(ProtocolNode):
            def on_activate(self):
                if self.ctx.now < 1.0:
                    for i in range(20):
                        self.send(1, "item", value=i)

        src, sink = Burst(0), Sink(1)
        runner.register_all([src, sink])
        runner.run_until(lambda: len(sink.seen) >= 20, max_time=100)
        assert sorted(sink.seen[:20]) == list(range(20))
        assert sink.seen[:20] != sorted(sink.seen[:20])  # at least one reorder

    def test_adversarial_delay_stragglers(self):
        rngs = RngRegistry(0)
        fn = adversarial_delay(slow_fraction=0.5, slow_factor=100)
        msgs = [Message(sender=0, dest=1, action="m") for _ in range(200)]
        delays = [fn(m, rngs.stream("d")) for m in msgs]
        assert max(delays) > 20 * min(delays)

    def test_adversarial_delay_is_schedule_stable(self):
        """A message's delay depends on its identity, not process history.

        Replays run the same transmit sequence in a fresh process, where
        the global ``Message.seq`` counter sits at a different offset; the
        sampler must give the same delays anyway, because it keys on the
        per-channel ordinal.  Duplicate copies of one message (same seq)
        must share one base delay.
        """
        channels = [(i % 3, (i + 1) % 4) for i in range(50)]

        def delays(fn):
            rng = RngRegistry(3).stream("d")
            return [
                fn(Message(sender=s, dest=d, action="m"), rng)
                for s, d in channels
            ]

        first = delays(adversarial_delay(slow_fraction=0.5, slow_factor=100))
        # Advance the process-global seq counter, as an earlier simulation
        # in the same process (or a different process history) would.
        for _ in range(997):
            Message(sender=9, dest=9, action="noise")
        second = delays(adversarial_delay(slow_fraction=0.5, slow_factor=100))
        assert first == second

    def test_adversarial_delay_dup_copies_share_a_delay(self):
        fn = adversarial_delay(slow_fraction=0.5, slow_factor=100)
        rng = RngRegistry(3).stream("d")
        msg = Message(sender=0, dest=1, action="m")
        assert fn(msg, rng) == fn(msg, rng)

    def test_activation_recurs(self):
        runner = AsyncRunner(seed=2, activation_period=0.5)
        node = Ticker(0)
        runner.register(node)
        runner.run_until(lambda: node.activations >= 4, max_time=10)
        assert node.activations >= 4

    def test_idle_node_parks_and_message_unparks(self):
        """Idle nodes leave the event heap; a delivery resumes the chain
        on the original activation grid."""
        runner = AsyncRunner(seed=2, activation_period=0.5)
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        # Drain both bootstrap activations; afterwards the heap is empty.
        while runner._events:
            runner._process_one()
        assert a.activations == 1 and b.activations == 1
        assert set(runner._parked) == {0, 1}
        a.send(1, "ping", value=3)
        runner.run_until(
            lambda: bool(a.pongs) and b.activations >= 2, max_time=100
        )
        assert a.pongs == [4]
        assert b.activations >= 2  # woken by the ping

    def test_negative_delay_rejected(self):
        runner = AsyncRunner(seed=0, delay_fn=lambda m, r: -1.0)
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        with pytest.raises(SimulationError):
            a.send(1, "ping", value=0)

    def test_run_until_quiescent(self):
        runner = AsyncRunner(seed=3)
        a, b = Echo(0), Echo(1)
        runner.register_all([a, b])
        a.send(1, "ping", value=1)
        runner.run_until_quiescent(max_time=1000)
        assert a.pongs == [2]


class TestDelayFnValidation:
    """Bad delay configurations fail eagerly, at construction time."""

    def test_uniform_delay_rejects_negative_low(self):
        with pytest.raises(SimulationError, match="low bound"):
            uniform_delay(-0.5, 2.0)

    def test_uniform_delay_rejects_inverted_range(self):
        with pytest.raises(SimulationError, match="inverted"):
            uniform_delay(3.0, 1.0)

    def test_uniform_delay_rejects_non_finite_bounds(self):
        with pytest.raises(SimulationError, match="finite"):
            uniform_delay(0.1, float("inf"))
        with pytest.raises(SimulationError, match="finite"):
            uniform_delay(float("nan"), 2.0)

    def test_uniform_delay_accepts_degenerate_range(self):
        # low == high is a legal (constant-delay) configuration.
        fn = uniform_delay(1.0, 1.0)
        rng = RngRegistry(0).stream("d")
        assert fn(Message(sender=0, dest=1, action="m"), rng) == 1.0

    def test_adversarial_delay_rejects_bad_slow_fraction(self):
        with pytest.raises(SimulationError, match="slow_fraction"):
            adversarial_delay(slow_fraction=-0.1)
        with pytest.raises(SimulationError, match="slow_fraction"):
            adversarial_delay(slow_fraction=1.5)

    def test_adversarial_delay_rejects_bad_slow_factor(self):
        with pytest.raises(SimulationError, match="slow_factor"):
            adversarial_delay(slow_factor=0.0)
        with pytest.raises(SimulationError, match="slow_factor"):
            adversarial_delay(slow_factor=-3.0)
        with pytest.raises(SimulationError, match="slow_factor"):
            adversarial_delay(slow_factor=float("inf"))

    def test_adversarial_delay_accepts_boundary_fractions(self):
        rng = RngRegistry(0).stream("d")
        for fraction in (0.0, 1.0):
            fn = adversarial_delay(slow_fraction=fraction, slow_factor=10.0)
            assert fn(Message(sender=0, dest=1, action="m"), rng) > 0
