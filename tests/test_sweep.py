"""Tests for the generic sweep utility and the bulk-submit sugar."""

from __future__ import annotations

import math

import pytest

from repro import BOTTOM, SeapHeap, SkeapHeap
from repro.errors import WorkloadError
from repro.harness import sweep


class TestSweep:
    def test_log_series(self):
        r = sweep("s", "t", [8, 16, 32, 64], lambda x: 3 * math.log2(x) + 1)
        assert r.looks_logarithmic and r.looks_sublinear
        assert abs(r.log_fit.a - 3) < 1e-9

    def test_linear_series(self):
        r = sweep("s", "t", [8, 16, 32, 64], lambda x: 2.0 * x)
        assert not r.looks_sublinear
        assert abs(r.linear_fit.a - 2) < 1e-9
        assert r.ratio_end_to_end() == pytest.approx(8.0)

    def test_table_rendering(self):
        r = sweep("S1", "my study", [2, 4], lambda x: x, x_label="n", y_label="cost")
        out = r.table.render()
        assert "S1" in out and "cost" in out and "log fit" in out

    def test_needs_two_points(self):
        with pytest.raises(WorkloadError):
            sweep("s", "t", [4], lambda x: x)

    def test_measure_failures_propagate(self):
        with pytest.raises(RuntimeError):
            sweep("s", "t", [1, 2], lambda x: (_ for _ in ()).throw(RuntimeError("boom")))

    def test_real_cluster_sweep(self):
        def rounds_for(n):
            heap = SkeapHeap(int(n), n_priorities=2, seed=1, record_history=False)
            heap.insert(priority=1, at=0)
            return heap.settle()

        r = sweep("real", "rounds vs n", [4, 8, 16], rounds_for)
        assert all(y > 0 for y in r.ys)


class TestBulkSubmit:
    def test_skeap_insert_many(self):
        heap = SkeapHeap(4, n_priorities=3, seed=2)
        handles = heap.insert_many([(2, "a"), (1, "b"), (3, "c")], at=0)
        heap.settle()
        assert all(h.done for h in handles)
        dels = heap.delete_min_many(4, at=1)
        heap.settle()
        got = [d.result.value for d in dels if d.result is not BOTTOM]
        assert got[0] == "b"  # priority 1 first
        assert sum(1 for d in dels if d.result is BOTTOM) == 1

    def test_seap_insert_many(self):
        heap = SeapHeap(4, seed=3)
        heap.insert_many([(100, "x"), (5, "y")], at=2)
        heap.settle()
        d = heap.delete_min_many(1, at=0)[0]
        heap.settle()
        assert d.result.value == "y"
