"""The batched sync kernel must be invisible.

Differential suite mirroring ``tests/test_fastpath.py``: every workload
run under ``batched_dispatch=True`` — grouped run dispatch, Message
pooling, coalesced aggregation, bulk metrics — must produce identical
observable state to the per-message kernel, while the batched kernel
demonstrably engages (``batched_rounds > 0``) or demonstrably steps aside
(faults, detail metrics, tracing).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import SeapHeap, SkeapHeap
from repro.cluster import OverlayCluster
from repro.errors import ProtocolError
from repro.sim import FaultPlan, ProtocolNode, SyncRunner
from repro.sim.faults import DROP, DUP, FaultEvent
from repro.sim.node import _build_batch_table
from repro.sim.sync_runner import _POOL_CAP, batched_dispatch_default

REPRODUCERS = sorted((Path(__file__).parent / "reproducers").glob("*.json"))


def _core_numbers(metrics):
    return (
        metrics.rounds,
        metrics.messages,
        metrics.bits,
        metrics.max_message_bits,
        metrics.congestion,
        list(metrics.congestion_by_round),
        list(metrics.max_bits_by_round),
    )


def _drive_skeap(**kwargs):
    heap = SkeapHeap(n_nodes=8, n_priorities=3, seed=21, **kwargs)
    for i in range(30):
        heap.insert(priority=1 + i % 3, at=i % 8)
    heap.settle()
    for i in range(15):
        heap.delete_min(at=i % 8)
    heap.settle()
    return heap


def _drive_seap(**kwargs):
    heap = SeapHeap(n_nodes=6, seed=31, **kwargs)
    for i in range(20):
        heap.insert(priority=1 + 13 * i % 97, at=i % 6)
    heap.settle()
    for i in range(10):
        heap.delete_min(at=i % 6)
    heap.settle()
    return heap


def _heap_state(heap):
    return (
        repr(sorted(heap.history.ops.items())),
        _core_numbers(heap.metrics),
        sorted(heap.all_route_hops()),
        sorted(heap.stored_uids()),
    )


class TestWorkloadIdentity:
    """Same tables, histories and stores — batched or not."""

    def test_skeap_workload_identical(self):
        plain = _drive_skeap()
        batched = _drive_skeap(batched_dispatch=True)
        assert plain.runner.batched_rounds == 0
        assert batched.runner.batched_rounds > 0
        assert _heap_state(plain) == _heap_state(batched)

    def test_seap_workload_identical(self):
        # Seap is the adversarial case: its clients issue DHT requests from
        # several different actions in the same round, so request-id
        # assignment observes per-node delivery order — the reason the
        # kernel groups contiguous runs instead of whole rounds.
        plain = _drive_seap()
        batched = _drive_seap(batched_dispatch=True)
        assert batched.runner.batched_rounds > 0
        assert _heap_state(plain) == _heap_state(batched)

    @pytest.mark.parametrize("proto", ["skeap", "seap"])
    def test_exact_transport_combo_identical(self, proto):
        drive = _drive_skeap if proto == "skeap" else _drive_seap
        plain = drive(exact_transport=True)
        batched = drive(exact_transport=True, batched_dispatch=True)
        assert batched.runner.flights_launched == 0
        assert batched.runner.batched_rounds > 0
        assert _heap_state(plain) == _heap_state(batched)

    def test_churned_workload_identical(self):
        def drive(**kwargs):
            heap = SkeapHeap(n_nodes=6, n_priorities=3, seed=9, **kwargs)
            for i in range(12):
                heap.insert(priority=1 + i % 3, at=i % 6)
            heap.settle()
            heap.add_node(6)
            for i in range(12):
                heap.insert(priority=1 + i % 3, at=i % 7)
            heap.settle()
            heap.remove_node(2)
            survivors = [0, 1, 3, 4, 5, 6]
            for i in range(10):
                heap.delete_min(at=survivors[i % len(survivors)])
            heap.settle()
            return heap

        plain = drive()
        batched = drive(batched_dispatch=True)
        assert batched.runner.batched_rounds > 0
        assert _heap_state(plain) == _heap_state(batched)

    def test_pool_reuse_engages(self):
        heap = _drive_seap(batched_dispatch=True)
        assert heap.runner.msgs_reused > 0
        assert heap.runner.msgs_reused > heap.runner.msgs_allocated


class TestBatchedGates:
    """Every disable condition of the contract, observed via the counter."""

    def _plan(self):
        return FaultPlan(
            seed=5,
            events=[
                FaultEvent(kind=DROP, src=0, dst=4, nth=0),
                FaultEvent(kind=DUP, src=1, dst=7, nth=1),
            ],
        )

    def test_faults_disable_batching(self):
        heap = _drive_skeap(faults=self._plan(), batched_dispatch=True)
        assert heap.runner.batched_rounds == 0
        assert heap.runner.msgs_reused == 0

    def test_faulted_run_identical_either_way(self):
        a = _drive_skeap(faults=self._plan(), batched_dispatch=True)
        b = _drive_skeap(faults=self._plan())
        assert _heap_state(a) == _heap_state(b)

    def test_detail_metrics_disable_batching(self):
        heap = _drive_skeap(metrics_detail=True, batched_dispatch=True)
        assert heap.runner.batched_rounds == 0
        assert _core_numbers(heap.metrics) == _core_numbers(
            _drive_skeap(batched_dispatch=True).metrics
        )

    def test_tracing_disables_batching(self, monkeypatch):
        from repro.sim.trace import Tracer

        runner = SyncRunner(batched_dispatch=True)
        runner.tracer = Tracer()
        assert runner.batching_enabled is False

    def test_env_var_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "1")
        assert batched_dispatch_default() is True
        heap = SkeapHeap(4, n_priorities=2, seed=0)
        assert heap.runner.batched_dispatch is True
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert batched_dispatch_default() is False
        assert SkeapHeap(4, n_priorities=2, seed=0).runner.batched_dispatch is False

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "1")
        heap = SkeapHeap(4, n_priorities=2, seed=0, batched_dispatch=False)
        assert heap.runner.batched_dispatch is False


class TestMessagePool:
    """The free list must never hand out a message still in flight."""

    def test_pool_only_fills_under_batched_kernel(self):
        plain = _drive_skeap()
        assert plain.runner.msgs_reused == 0
        assert not any(plain.runner._msg_pool.values())

    def test_pooled_messages_are_not_in_flight(self):
        # After every drained run the pool holds only parked messages:
        # payload cleared, and none of them is in the outbox.
        heap = _drive_seap(batched_dispatch=True)
        runner = heap.runner
        in_flight = set(map(id, runner._outbox))
        for free in runner._msg_pool.values():
            for m in free:
                assert m.payload is None
                assert m.trace_ctx is None
                assert id(m) not in in_flight

    def test_pool_respects_cap(self):
        heap = _drive_seap(batched_dispatch=True)
        for action, free in heap.runner._msg_pool.items():
            assert len(free) <= _POOL_CAP, action

    @pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
    def test_reproducers_replay_identically_with_pool_active(
        self, path, monkeypatch
    ):
        # Fault reproducers force the per-message kernel, so REPRO_BATCHED=1
        # must be a no-op: byte-for-byte the same failure signature, and the
        # pool must stay untouched (it never recycles in-flight messages —
        # under faults it is never even filled).
        from repro.harness.fuzz import replay_reproducer

        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        ok_plain, res_plain, _ = replay_reproducer(path)
        monkeypatch.setenv("REPRO_BATCHED", "1")
        ok_batched, res_batched, _ = replay_reproducer(path)
        assert ok_plain and ok_batched
        assert (res_plain.signature, res_plain.message) == (
            res_batched.signature, res_batched.message
        )


class TestBatchHandlers:
    """Resolution and semantics of ``on_<action>_batch`` entry points."""

    def test_agg_up_batch_registered_for_overlay_nodes(self):
        from repro.overlay.base import OverlayNode

        table = _build_batch_table(OverlayNode)
        assert "agg_up" in table

    def test_batch_table_mro_scan_finds_inherited(self):
        class Base(ProtocolNode):
            @staticmethod
            def on_ping_batch(deliveries):
                for node, sender, payload in deliveries:
                    node.hits.append((sender, payload["x"]))

            def on_ping(self, sender, x):
                self.hits.append((sender, x))

        class Sub(Base):
            pass

        assert "ping" in _build_batch_table(Sub)
        assert "ping" in _build_batch_table(Base)

    def test_batched_runner_uses_batch_handler_for_runs(self):
        calls = []

        class Batchy(ProtocolNode):
            def on_ev(self, sender, x):
                calls.append(("single", self.id, x))

            @staticmethod
            def on_ev_batch(deliveries):
                calls.append(("batch", [(n.id, p["x"]) for n, _, p in deliveries]))

        runner = SyncRunner(batched_dispatch=True)
        nodes = [Batchy(i) for i in range(3)]
        runner.register_all(nodes)
        for i in range(3):
            nodes[0].send(i, "ev", x=i)
        runner.step()  # deliver nothing (sends land next round)
        runner.step()
        batch_calls = [c for c in calls if c[0] == "batch"]
        single_calls = [c for c in calls if c[0] == "single"]
        # All three deliveries this round are one contiguous run of the
        # same (class, action): exactly one batch call, no single calls.
        assert len(batch_calls) == 1
        assert sorted(batch_calls[0][1]) == [(0, 0), (1, 1), (2, 2)]
        assert single_calls == []

    def test_singleton_runs_use_single_handler(self):
        calls = []

        class Mixed(ProtocolNode):
            def on_a(self, sender):
                calls.append(("a", self.id))

            def on_b(self, sender):
                calls.append(("b", self.id))

            @staticmethod
            def on_a_batch(deliveries):
                calls.append(("a_batch", len(deliveries)))

        runner = SyncRunner(batched_dispatch=True)
        node = Mixed(0)
        runner.register(node)
        node.send(0, "a")
        runner.step()
        runner.step()
        # A single-message run skips the batch entry point.
        assert calls == [("a", 0)]

    def test_duplicate_child_value_still_raises(self):
        heap = SkeapHeap(4, n_priorities=2, seed=0, batched_dispatch=True)
        anchor = heap.anchor
        with pytest.raises(ProtocolError, match="duplicate child value"):
            from repro.overlay.base import OverlayNode

            deliveries = [
                (anchor, 99, {"tag": ("bogus", 0), "value": 1}),
                (anchor, 99, {"tag": ("bogus", 0), "value": 2}),
            ]
            OverlayNode.on_agg_up_batch(deliveries)


class TestHarnessParity:
    """The flag plumbing and the tables it must not change."""

    def test_quick_tables_identical_batched_vs_not(self, monkeypatch):
        from repro.harness.experiments import all_plans
        from repro.harness.parallel import execute_plans

        def render(batched):
            if batched:
                monkeypatch.setenv("REPRO_BATCHED", "1")
            else:
                monkeypatch.delenv("REPRO_BATCHED", raising=False)
            tables = execute_plans(all_plans(quick=True, ids=["T1", "T10"]), jobs=1)
            return "\n".join(t.render() for t in tables)

        assert render(batched=False) == render(batched=True)

    def test_quick_tables_identical_in_jobs_mode(self, monkeypatch):
        from repro.harness.experiments import all_plans
        from repro.harness.parallel import execute_plans

        monkeypatch.setenv("REPRO_BATCHED", "1")
        serial = execute_plans(all_plans(quick=True, ids=["T2"]), jobs=1)
        parallel = execute_plans(all_plans(quick=True, ids=["T2"]), jobs=2)
        assert [t.render() for t in serial] == [t.render() for t in parallel]

    def test_bench_kernel_subcommand_runs(self, tmp_path, capsys):
        import json

        from repro.harness.bench_kernel import bench_kernel_main

        out = tmp_path / "bench.json"
        rc = bench_kernel_main(
            ["--nodes", "8", "--ops", "40", "--seed", "3", "--json", str(out)]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "msgs/sec" in captured
        doc = json.loads(out.read_text())
        names = [b["fullname"] for b in doc["benchmarks"]]
        assert any("per-message" in n for n in names)
        assert any("batched" in n for n in names)
        for bench in doc["benchmarks"]:
            assert bench["stats"]["median"] > 0


class TestSegmentWalk:
    """The segment-cached planner walk equals the exact walk everywhere."""

    @pytest.mark.parametrize("n_nodes,seed", [(1, 3), (4, 0), (13, 7), (32, 5)])
    def test_segment_walk_matches_exact(self, n_nodes, seed):
        cluster = OverlayCluster(n_nodes, seed=seed)
        planner = cluster.route_planner
        rng = cluster.runner.rng.stream("segment-walk-test")
        targets = [float(rng.random()) for _ in range(40)]
        for origin in cluster.topology.cycle:
            for target in targets:
                assert planner._walk(origin, target) == planner._walk_exact(
                    origin, target
                ), (origin, target)
