"""Tests for the parallel experiment harness (plans + process fan-out)."""

from __future__ import annotations

import pytest

from repro.harness import (
    ALL_EXPERIMENTS,
    ALL_PLAN_FACTORIES,
    ExperimentPlan,
    all_plans,
    execute_plans,
)
from repro.harness.experiments import plan_t1, plan_t13, plan_t14


class TestPlanRegistry:
    def test_every_experiment_has_a_plan(self):
        assert set(ALL_PLAN_FACTORIES) == set(ALL_EXPERIMENTS)
        assert list(ALL_PLAN_FACTORIES) == list(ALL_EXPERIMENTS)

    def test_all_plans_default_order(self):
        plans = all_plans(quick=True)
        assert [p.exp_id for p in plans] == list(ALL_PLAN_FACTORIES)

    def test_all_plans_honours_ids_order(self):
        plans = all_plans(ids=["T13", "T1"])
        assert [p.exp_id for p in plans] == ["T13", "T1"]

    def test_quick_trims_grids(self):
        full = {p.exp_id: len(p.tasks) for p in all_plans()}
        quick = {p.exp_id: len(p.tasks) for p in all_plans(quick=True)}
        for exp_id in ("T1", "T4", "T7", "T10", "T11"):
            assert quick[exp_id] < full[exp_id]

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            all_plans(ids=["T99"])


class TestPlanExecution:
    def test_tasks_are_picklable(self):
        import pickle

        for plan in all_plans(quick=True):
            for task in plan.tasks:
                pickle.dumps(task)

    def test_serial_matches_legacy_function(self):
        from repro.harness.experiments import t1_skeap_rounds

        plan = plan_t1(ns=(8, 16), ops_per_node=1)
        assert (
            plan.run_serial().to_markdown()
            == t1_skeap_rounds(ns=(8, 16), ops_per_node=1).to_markdown()
        )

    def test_parallel_matches_serial_byte_for_byte(self):
        """The acceptance bar: fanning grid points across processes must
        reproduce the serial tables exactly, render and all."""
        plans = [plan_t1(ns=(8, 16), ops_per_node=1), plan_t13(ns=(8, 16))]
        serial = [p.run_serial() for p in plans]
        parallel = execute_plans(
            [plan_t1(ns=(8, 16), ops_per_node=1), plan_t13(ns=(8, 16))], jobs=2
        )
        assert [t.to_markdown() for t in serial] == [
            t.to_markdown() for t in parallel
        ]
        assert [t.render() for t in serial] == [t.render() for t in parallel]

    def test_jobs_one_runs_inline(self):
        tables = execute_plans([plan_t1(ns=(8, 16), ops_per_node=1)], jobs=1)
        assert len(tables) == 1 and tables[0].exp_id == "T1"

    def test_results_regroup_in_plan_order(self):
        plan = plan_t14(ns=(8, 16))
        serial = plan.run_serial()
        parallel = execute_plans([plan_t14(ns=(8, 16))], jobs=2)[0]
        assert serial.to_markdown() == parallel.to_markdown()

    def test_assemble_sees_results_in_task_order(self):
        order: list[int] = []
        plan = ExperimentPlan(
            "X",
            [(_identity, {"x": i}) for i in range(5)],
            lambda results: order.extend(results),
        )
        plan.run_serial()
        assert order == list(range(5))


def _identity(x):
    return x
