"""Tests for the paper's extensions: MaxHeap order (Def. 1.2 remark),
Skueue (the FSS18a queue Skeap generalizes), and Seap-SC (the Section-6
sequentially consistent Seap sketch).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BOTTOM,
    SeapSCHeap,
    SkeapHeap,
    SkueueQueue,
    check_seap_sc_history,
    check_skeap_history,
)
from repro.errors import ConsistencyError, ProtocolError
from repro.semantics import FifoPriorityHeap
from repro.skeap import AnchorState, Batch, BatchEntry


class TestMaxOrderAnchor:
    def test_deletes_drain_highest_first(self):
        anchor = AnchorState(3, order="max")
        anchor.assign(Batch(3, [BatchEntry((2, 2, 2), 0)]))
        block = anchor.assign(Batch(3, [BatchEntry((0, 0, 0), 5)]))
        pieces = block.entries[0].del_pieces
        assert [(p.priority, p.count) for p in pieces] == [(3, 2), (2, 2), (1, 1)]

    def test_invalid_order_rejected(self):
        with pytest.raises(ProtocolError):
            AnchorState(2, order="sideways")
        with pytest.raises(ConsistencyError):
            FifoPriorityHeap(order="sideways")


class TestMaxHeap:
    def test_delete_returns_highest_priority(self):
        heap = SkeapHeap(n_nodes=5, n_priorities=3, seed=2, order="max")
        heap.insert(priority=1, at=0)
        heap.insert(priority=3, at=1)
        heap.insert(priority=2, at=2)
        heap.settle()
        d = heap.delete_min(at=3)
        heap.settle()
        assert d.result.priority == 3

    def test_full_drain_descending(self):
        heap = SkeapHeap(n_nodes=4, n_priorities=4, seed=3, order="max")
        for p in (2, 4, 1, 3):
            heap.insert(priority=p, at=0)
            heap.settle()
        got = []
        for _ in range(4):
            d = heap.delete_min(at=1)
            heap.settle()
            got.append(d.result.priority)
        assert got == [4, 3, 2, 1]

    def test_history_checks_with_max_order(self):
        heap = SkeapHeap(n_nodes=6, n_priorities=3, seed=4, order="max")
        rng = random.Random(4)
        for _ in range(40):
            if rng.random() < 0.6:
                heap.insert(priority=rng.randint(1, 3), at=rng.randrange(6))
            else:
                heap.delete_min(at=rng.randrange(6))
        heap.settle()
        check_skeap_history(heap.history, order="max")

    def test_min_history_fails_max_check(self):
        heap = SkeapHeap(n_nodes=4, n_priorities=3, seed=5)  # min order
        heap.insert(priority=1, at=0)
        heap.insert(priority=3, at=1)
        heap.settle()
        heap.delete_min(at=2)
        heap.settle()
        with pytest.raises(ConsistencyError):
            check_skeap_history(heap.history, order="max")

    def test_fifo_reference_max_order(self):
        heap = FifoPriorityHeap(order="max")
        heap.insert(1, 10)
        heap.insert(5, 11)
        heap.insert(5, 12)
        assert heap.delete_min() == (5, 11)
        assert heap.delete_min() == (5, 12)
        assert heap.delete_min() == (1, 10)


class TestSkueue:
    def test_fifo_order(self):
        q = SkueueQueue(n_nodes=5, seed=1)
        for v in "abc":
            q.enqueue(v, at=0)
            q.settle()
        got = []
        for _ in range(3):
            d = q.dequeue(at=2)
            q.settle()
            got.append(d.result.value)
        assert got == ["a", "b", "c"]

    def test_bottom_on_empty(self):
        q = SkueueQueue(n_nodes=3, seed=2)
        d = q.dequeue(at=0)
        q.settle()
        assert d.result is BOTTOM

    def test_queue_length(self):
        q = SkueueQueue(n_nodes=4, seed=3)
        for i in range(5):
            q.enqueue(i, at=i % 4)
        q.settle()
        assert q.queue_length() == 5

    def test_sequential_consistency_inherited(self):
        q = SkueueQueue(n_nodes=6, seed=4)
        rng = random.Random(4)
        for i in range(50):
            if rng.random() < 0.6:
                q.enqueue(i, at=rng.randrange(6))
            else:
                q.dequeue(at=rng.randrange(6))
        q.settle()
        check_skeap_history(q.history)

    def test_priority_argument_ignored(self):
        q = SkueueQueue(n_nodes=2, seed=5, n_priorities=7)
        assert q.n_priorities == 1


class TestSeapSC:
    def test_basic_roundtrip(self):
        heap = SeapSCHeap(n_nodes=5, seed=1)
        heap.insert(priority=7, value="x", at=0)
        d = heap.delete_min(at=2)
        heap.settle()
        assert d.result.value == "x"

    def test_local_order_never_overtaken(self):
        """A node's delete issued before its insert must not return it."""
        heap = SeapSCHeap(n_nodes=4, seed=2)
        d = heap.delete_min(at=0)        # issued first at node 0
        ins = heap.insert(priority=5, at=0)  # issued second at node 0
        heap.settle()
        assert d.result is BOTTOM  # the later insert may not serve it
        assert ins.done
        d2 = heap.delete_min(at=1)
        heap.settle()
        assert d2.result.priority == 5

    def test_exact_rank_positions(self):
        """Within one epoch, pull i returns the globally i-th smallest."""
        heap = SeapSCHeap(n_nodes=6, seed=3)
        prios = [40, 10, 60, 20, 50, 30]
        for i, p in enumerate(prios):
            heap.insert(priority=p, at=i)
        heap.settle()
        heap.pause()
        dels = [heap.delete_min(at=i) for i in range(4)]
        heap.resume()
        heap.settle()
        by_pos = sorted(d.result.priority for d in dels)
        assert by_pos == [10, 20, 30, 40]
        check_seap_sc_history(heap.history)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=6)
    def test_random_histories_sequentially_consistent(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        heap = SeapSCHeap(n_nodes=n, seed=seed)
        for _ in range(rng.randint(5, 35)):
            if rng.random() < 0.55:
                heap.insert(priority=rng.randint(1, 1 << 16), at=rng.randrange(n))
            else:
                heap.delete_min(at=rng.randrange(n))
        heap.settle(500_000)
        check_seap_sc_history(heap.history)

    def test_alternating_buffer_drains_slowly_but_fully(self):
        """ins/del/ins/del at one node: one run per phase, all resolved."""
        heap = SeapSCHeap(n_nodes=3, seed=5)
        handles = []
        for i in range(4):
            handles.append(heap.insert(priority=i + 1, at=0))
            handles.append(heap.delete_min(at=0))
        heap.settle(500_000)
        assert all(h.done for h in handles)
        returned = [h.result.priority for h in handles if h.kind == "del" and h.result is not BOTTOM]
        assert returned == [1, 2, 3, 4]  # strictly per local order

    def test_plain_seap_violates_what_sc_guarantees(self):
        """The contrast: plain Seap may serve a delete from a locally later
        insert (serializable, not locally consistent); SC never does."""
        from repro import SeapHeap
        from repro.semantics import check_local_consistency

        heap = SeapHeap(n_nodes=4, seed=2)
        heap.delete_min(at=0)
        heap.insert(priority=5, at=0)
        heap.settle()
        # plain Seap's epoch runs the insert phase first: the delete is
        # matched by the later insert — a local-consistency violation.
        with pytest.raises(ConsistencyError):
            check_local_consistency(heap.history)


class TestSkackStack:
    def test_lifo_basic(self):
        from repro import SkackStack

        s = SkackStack(n_nodes=5, seed=1)
        for v in "abc":
            s.push(v, at=0)
            s.settle()
        got = []
        for _ in range(3):
            p = s.pop(at=2)
            s.settle()
            got.append(p.result.value)
        assert got == ["c", "b", "a"]

    def test_bottom_on_empty(self):
        from repro import SkackStack

        s = SkackStack(n_nodes=3, seed=2)
        p = s.pop(at=0)
        s.settle()
        assert p.result is BOTTOM

    def test_interleaved_push_pop(self):
        from repro import SkackStack

        s = SkackStack(n_nodes=4, seed=3)
        s.push("a", at=0); s.settle()
        s.push("b", at=1); s.settle()
        p1 = s.pop(at=2); s.settle()
        s.push("c", at=3); s.settle()
        p2 = s.pop(at=0); s.settle()
        p3 = s.pop(at=1); s.settle()
        assert [p1.result.value, p2.result.value, p3.result.value] == ["b", "c", "a"]

    def test_positions_never_reused(self):
        """Interleaved batches must not collide DHT rendezvous keys."""
        from repro import SkackStack, check_skack_history

        s = SkackStack(n_nodes=6, seed=9)
        rng = random.Random(9)
        for i in range(70):
            if rng.random() < 0.6:
                s.push(i, at=rng.randrange(6))
            else:
                s.pop(at=rng.randrange(6))
            if rng.random() < 0.25:
                s.settle()
        s.settle()
        check_skack_history(s.history)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8)
    def test_random_stack_histories(self, seed):
        from repro import SkackStack, check_skack_history

        rng = random.Random(seed)
        n = rng.randint(1, 6)
        s = SkackStack(n_nodes=n, seed=seed)
        for i in range(rng.randint(5, 50)):
            if rng.random() < 0.6:
                s.push(i, at=rng.randrange(n))
            else:
                s.pop(at=rng.randrange(n))
            if rng.random() < 0.15:
                s.settle()
        s.settle()
        check_skack_history(s.history)

    def test_sequential_matches_list_model(self):
        from repro import SkackStack

        s = SkackStack(n_nodes=4, seed=5)
        model: list[int] = []
        rng = random.Random(5)
        for i in range(40):
            if rng.random() < 0.6:
                h = s.push(i, at=rng.randrange(4))
                s.settle()
                model.append(h.uid)
            else:
                p = s.pop(at=rng.randrange(4))
                s.settle()
                if model:
                    assert p.result.uid == model.pop()
                else:
                    assert p.result is BOTTOM

    def test_stack_height(self):
        from repro import SkackStack

        s = SkackStack(n_nodes=3, seed=6)
        for i in range(4):
            s.push(i, at=i % 3)
        s.settle()
        assert s.stack_height() == 4
        s.pop(at=0)
        s.settle()
        assert s.stack_height() == 3

    def test_membership_preserves_stack(self):
        from repro import SkackStack

        s = SkackStack(n_nodes=4, seed=7)
        for v in "wxyz":
            s.push(v, at=0)
            s.settle()
        s.add_node(4)
        s.remove_node(1)
        got = []
        for _ in range(4):
            p = s.pop(at=s.topology.real_ids[0])
            s.settle()
            got.append(p.result.value)
        assert got == ["z", "y", "x", "w"]


class TestLifoHeap:
    def test_lifo_within_priority(self):
        """Priority heap with LIFO tie-breaking: youngest-of-most-urgent."""
        heap = SkeapHeap(n_nodes=4, n_priorities=2, seed=8, discipline="lifo")
        a = heap.insert(priority=1, value="old", at=0)
        heap.settle()
        b = heap.insert(priority=1, value="new", at=1)
        heap.settle()
        heap.insert(priority=2, value="low", at=2)
        heap.settle()
        d1 = heap.delete_min(at=3)
        heap.settle()
        d2 = heap.delete_min(at=3)
        heap.settle()
        assert d1.result.uid == b.uid  # youngest of priority 1
        assert d2.result.uid == a.uid

    def test_invalid_discipline(self):
        from repro.skeap import AnchorState

        with pytest.raises(ProtocolError):
            AnchorState(2, discipline="random")


class TestExtensionsUnderAsynchrony:
    def test_seap_sc_async(self):
        from repro.sim.async_runner import adversarial_delay

        heap = SeapSCHeap(
            n_nodes=4, seed=31, runner="async", delay_fn=adversarial_delay()
        )
        rng = random.Random(31)
        for i in range(30):
            if rng.random() < 0.55:
                heap.insert(priority=rng.randint(1, 1000), at=rng.randrange(4))
            else:
                heap.delete_min(at=rng.randrange(4))
        heap.settle(500_000)
        check_seap_sc_history(heap.history)

    def test_skack_async(self):
        from repro import SkackStack, check_skack_history
        from repro.sim.async_runner import adversarial_delay

        s = SkackStack(n_nodes=4, seed=32, runner="async", delay_fn=adversarial_delay())
        rng = random.Random(32)
        for i in range(40):
            if rng.random() < 0.6:
                s.push(i, at=rng.randrange(4))
            else:
                s.pop(at=rng.randrange(4))
        s.settle(500_000)
        check_skack_history(s.history)

    def test_skueue_async(self):
        from repro import SkueueQueue
        from repro.sim.async_runner import uniform_delay

        q = SkueueQueue(n_nodes=5, seed=33, runner="async", delay_fn=uniform_delay())
        rng = random.Random(33)
        for i in range(40):
            if rng.random() < 0.6:
                q.enqueue(i, at=rng.randrange(5))
            else:
                q.dequeue(at=rng.randrange(5))
        q.settle(500_000)
        check_skeap_history(q.history)
