"""Admission control: the window bounds work, fairness holds, overload
sheds with RETRY_AFTER (and clients converge by retrying), and nothing
is ever silently lost."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service import AdmissionController, QueueClient, QueueService
from repro.service.admission import AdmissionDecision


class TestControllerUnit:
    def test_admits_up_to_window(self):
        ctl = AdmissionController(window=4)
        ctl.register("c")
        decisions = [ctl.try_admit("c") for _ in range(5)]
        assert [d.admitted for d in decisions] == [True] * 4 + [False]
        assert decisions[-1].retry_after > 0
        assert ctl.shed_total == 1 and ctl.admitted_total == 4

    def test_release_reopens_the_window(self):
        ctl = AdmissionController(window=2)
        ctl.register("c")
        assert ctl.try_admit("c").admitted
        assert ctl.try_admit("c").admitted
        assert not ctl.try_admit("c").admitted
        ctl.release("c")
        assert ctl.try_admit("c").admitted

    def test_fair_share_splits_window_across_clients(self):
        ctl = AdmissionController(window=8)
        ctl.register("a")
        ctl.register("b")
        assert ctl.fair_share() == 4
        # One greedy client cannot take the whole window...
        grabbed = sum(ctl.try_admit("a").admitted for _ in range(8))
        assert grabbed == 4
        # ...and the other still gets its full share.
        assert sum(ctl.try_admit("b").admitted for _ in range(8)) == 4

    def test_fair_share_returns_after_unregister(self):
        ctl = AdmissionController(window=8)
        ctl.register("a")
        ctl.register("b")
        for _ in range(4):
            assert ctl.try_admit("a").admitted
        ctl.unregister("b")
        assert ctl.fair_share() == 8
        assert ctl.in_flight == 4  # b held nothing
        assert ctl.try_admit("a").admitted

    def test_unregister_returns_held_slots(self):
        ctl = AdmissionController(window=4)
        ctl.register("a")
        ctl.register("b")
        assert ctl.try_admit("a").admitted
        assert ctl.try_admit("a").admitted
        ctl.unregister("a")
        assert ctl.in_flight == 0

    def test_retry_after_scales_with_saturation(self):
        ctl = AdmissionController(window=4, base_retry_after=0.1)
        ctl.register("a")
        ctl.register("b")
        empty_hint = ctl.try_admit("a")  # admitted; probe the delay fn
        for _ in range(3):
            ctl.try_admit("a")
        for _ in range(2):
            ctl.try_admit("b")
        full = ctl.try_admit("b")
        assert not full.admitted
        assert full.retry_after == pytest.approx(0.1 * 2.0)  # window saturated
        assert empty_hint.admitted

    def test_misuse_raises(self):
        ctl = AdmissionController(window=2)
        with pytest.raises(ServiceError, match="not registered"):
            ctl.try_admit("ghost")
        ctl.register("c")
        with pytest.raises(ServiceError, match="registered twice"):
            ctl.register("c")
        with pytest.raises(ServiceError, match="release without admit"):
            ctl.release("c")
        with pytest.raises(ServiceError, match="window must be"):
            AdmissionController(window=0)

    def test_decision_is_frozen(self):
        decision = AdmissionDecision(True)
        with pytest.raises(AttributeError):
            decision.admitted = False


class TestLiveShedding:
    """Against a real service: RETRY_AFTER frames, fairness, convergence."""

    def test_window_full_returns_retry_after_frame(self):
        from repro.service.wire import read_frame, write_frame

        async def scenario():
            async with QueueService(
                "skeap", n_nodes=4, seed=0, window=2
            ) as service:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                await write_frame(writer, {"rid": 0, "op": "hello"})
                await read_frame(reader)
                # Burst past the window without awaiting completions.
                for rid in range(1, 5):
                    await write_frame(
                        writer, {"rid": rid, "op": "insert", "priority": 1}
                    )
                statuses = {}
                while len(statuses) < 4:
                    frame = await read_frame(reader)
                    statuses[frame["rid"]] = frame
                writer.close()
                return statuses

        statuses = asyncio.run(scenario())
        shed = [f for f in statuses.values() if f["status"] == "retry_after"]
        done = [f for f in statuses.values() if f["status"] == "ok"]
        assert len(shed) == 2 and len(done) == 2
        for frame in shed:
            assert frame["retry_after"] > 0
            assert frame["reason"]

    def test_retrying_client_converges_under_overload(self):
        """Every op eventually lands despite a window much smaller than
        the offered concurrency — shed, retry, converge; none lost."""

        async def scenario():
            async with QueueService(
                "skeap", n_nodes=4, seed=1, window=3, base_retry_after=0.01
            ) as service:
                client = await QueueClient.connect(
                    service.host, service.port, client="pushy"
                )
                results = await asyncio.gather(
                    *(client.insert(i % 3 + 1, f"v{i}") for i in range(12))
                )
                history = await client.history()
                stats = await client.stats()
                shed_seen = client.shed_seen
                await client.aclose()
                return results, history, stats, shed_seen

        results, history, stats, shed_seen = asyncio.run(scenario())
        assert len(results) == 12
        assert len({r.uid for r in results}) == 12  # every insert landed once
        assert shed_seen > 0  # overload actually happened
        assert stats["admission"]["shed"] > 0
        # No silent loss: all 12 elements are accounted for in the census.
        assert len(history["stored_uids"]) == 12

    def test_fairness_across_two_live_clients(self):
        """With one client hammering, the second still gets slots."""

        async def scenario():
            async with QueueService(
                "skeap", n_nodes=4, seed=2, window=4, base_retry_after=0.01
            ) as service:
                greedy = await QueueClient.connect(
                    service.host, service.port, client="greedy"
                )
                polite = await QueueClient.connect(
                    service.host, service.port, client="polite"
                )

                async def hammer():
                    await asyncio.gather(
                        *(greedy.insert(1, f"g{i}") for i in range(16))
                    )

                async def trickle():
                    out = []
                    for i in range(4):
                        out.append(await polite.insert(2, f"p{i}"))
                    return out

                _, polite_results = await asyncio.gather(hammer(), trickle())
                stats = await polite.stats()
                await greedy.aclose()
                await polite.aclose()
                return polite_results, stats

        polite_results, stats = asyncio.run(scenario())
        # The polite client completed all its ops; fairness kept the
        # greedy one from monopolizing the window.
        assert len(polite_results) == 4
        assert stats["admission"]["admitted"] == 20
        assert stats["admission"]["fair_share"] == 2


class TestCounterInvariants:
    """Property: the admission counters stay coherent under arbitrary
    concurrent shed/retry storms — any interleaving of admits and
    releases across any client population."""

    @given(
        window=st.integers(min_value=1, max_value=8),
        events=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.booleans()),
            max_size=80,
        ),
    )
    @settings(max_examples=100)
    def test_storm_never_breaks_the_books(self, window, events):
        ctl = AdmissionController(window=window)
        for c in range(5):
            ctl.register(f"c{c}")
        offered = 0
        held = {f"c{c}": 0 for c in range(5)}
        for client_idx, is_admit in events:
            name = f"c{client_idx}"
            if is_admit:
                offered += 1
                if ctl.try_admit(name).admitted:
                    held[name] += 1
            elif held[name] > 0:
                ctl.release(name)
                held[name] -= 1
            # Occupancy never exceeds the window bound, at any prefix.
            assert 0 <= ctl.in_flight <= window
            assert ctl.in_flight == sum(held.values())
            # Every offered request was either admitted or shed: nothing
            # is ever silently dropped or double-counted.
            assert ctl.admitted_total + ctl.shed_total == offered
            assert ctl.released_total == ctl.admitted_total - ctl.in_flight
        snap = ctl.snapshot()
        assert snap["in_flight"] == sum(held.values())
        assert snap["admitted"] + snap["shed"] == offered

    @given(
        window=st.integers(min_value=1, max_value=6),
        n_clients=st.integers(min_value=1, max_value=4),
        attempts=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=50)
    def test_pure_admit_storm_saturates_exactly(self, window, n_clients, attempts):
        ctl = AdmissionController(window=window)
        for c in range(n_clients):
            ctl.register(f"c{c}")
        admitted = sum(
            ctl.try_admit(f"c{i % n_clients}").admitted for i in range(attempts)
        )
        assert admitted == ctl.in_flight <= window
        assert ctl.admitted_total + ctl.shed_total == attempts
