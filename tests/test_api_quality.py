"""API-quality gates: documented, importable, coherent public surface."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.overlay",
    "repro.dht",
    "repro.skeap",
    "repro.kselect",
    "repro.seap",
    "repro.semantics",
    "repro.baselines",
    "repro.workloads",
    "repro.harness",
]


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        yield name, getattr(module, name)


class TestDocumentation:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_module_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip(), package
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                sub = importlib.import_module(f"{package}.{info.name}")
                assert sub.__doc__ and sub.__doc__.strip(), sub.__name__

    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_public_item_has_docstring(self, package):
        module = importlib.import_module(package)
        missing = []
        for name, obj in _public_members(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(name)
        assert not missing, f"{package}: undocumented public items {missing}"

    def test_public_classes_have_documented_public_methods(self):
        from repro import KSelectCluster, SeapHeap, SkeapHeap

        for cls in (SkeapHeap, SeapHeap, KSelectCluster):
            for name, member in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(member):
                    continue
                assert member.__doc__ and member.__doc__.strip(), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )


class TestExports:
    def test_all_entries_resolve(self):
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{package}.__all__ lists missing {name}"

    def test_all_sorted_at_top_level(self):
        assert repro.__all__ == sorted(repro.__all__)

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)

    def test_star_import_is_clean(self):
        namespace: dict = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        assert "SkeapHeap" in namespace and "SeapHeap" in namespace
