"""Tests for the baseline implementations and ablations."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import BOTTOM
from repro.baselines import (
    BinaryHeap,
    CentralHeapCluster,
    GatherSelectCluster,
    UnbatchedHeapCluster,
)
from repro.errors import ProtocolError


class TestBinaryHeap:
    def test_basic_order(self):
        heap = BinaryHeap()
        for key in [(5, 0), (1, 1), (3, 2)]:
            heap.insert(key)
        assert heap.delete_min() == (1, 1)
        assert heap.peek() == (3, 2)
        assert len(heap) == 2

    def test_empty_errors(self):
        heap = BinaryHeap()
        with pytest.raises(ProtocolError):
            heap.peek()
        with pytest.raises(ProtocolError):
            heap.delete_min()

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 10**6)), max_size=120))
    def test_heapsort_property(self, keys):
        heap = BinaryHeap()
        for key in keys:
            heap.insert(key)
            heap.check_invariant()
        drained = [heap.delete_min() for _ in range(len(keys))]
        assert drained == sorted(keys)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=100))
    def test_interleaved_matches_sorted_model(self, script):
        import heapq

        heap = BinaryHeap()
        model: list = []
        uid = 0
        for is_insert, p in script:
            if is_insert or not model:
                uid += 1
                heap.insert((p, uid))
                heapq.heappush(model, (p, uid))
                heap.check_invariant()
            else:
                assert heap.delete_min() == heapq.heappop(model)


class TestCentralBaseline:
    def test_serves_minimum(self):
        c = CentralHeapCluster(4, seed=0)
        c.insert(priority=9, at=0)
        c.insert(priority=2, at=1)
        c.settle()
        d = c.delete_min(at=2)
        c.settle()
        assert d.result.priority == 2

    def test_bottom_on_empty(self):
        c = CentralHeapCluster(4, seed=0)
        d = c.delete_min(at=0)
        c.settle()
        assert d.result is BOTTOM

    def test_coordinator_congestion_scales_with_clients(self):
        def congestion_for(n):
            c = CentralHeapCluster(n, seed=1)
            for node in range(n):
                c.insert(priority=1, at=node)
            c.runner.step()
            c.settle()
            return c.metrics.congestion

        assert congestion_for(32) >= 3 * congestion_for(4)

    def test_invalid_size(self):
        with pytest.raises(ProtocolError):
            CentralHeapCluster(0)


class TestGatherBaseline:
    def test_selects_correctly(self):
        rng = random.Random(2)
        keys = [(rng.randint(1, 10**5), uid) for uid in range(150)]
        g = GatherSelectCluster(8, seed=2)
        g.scatter(keys)
        for k in (1, 75, 150):
            assert g.select(k) == sorted(keys)[k - 1]

    def test_message_bits_scale_with_m(self):
        def bits_for(m):
            g = GatherSelectCluster(8, seed=3)
            g.scatter([(i, i) for i in range(m)])
            g.select(m // 2)
            return g.metrics.max_message_bits

        assert bits_for(400) > 2 * bits_for(50)

    def test_invalid_k(self):
        g = GatherSelectCluster(4, seed=4)
        g.scatter([(1, 1)])
        with pytest.raises(ProtocolError):
            g.select(5)


class TestUnbatchedAblation:
    def test_basic_heap_behaviour(self):
        u = UnbatchedHeapCluster(6, n_priorities=3, seed=5)
        u.insert(priority=3, at=0)
        u.insert(priority=1, at=1)
        u.settle()
        d = u.delete_min(at=2)
        u.settle()
        assert d.result.priority == 1

    def test_bottom_on_empty(self):
        u = UnbatchedHeapCluster(4, n_priorities=2, seed=6)
        d = u.delete_min(at=0)
        u.settle()
        assert d.result is BOTTOM

    def test_all_elements_retrievable(self):
        u = UnbatchedHeapCluster(5, n_priorities=2, seed=7)
        for i in range(10):
            u.insert(priority=1 + i % 2, at=i % 5)
        u.settle()
        dels = [u.delete_min(at=i % 5) for i in range(10)]
        u.settle()
        assert all(d.result is not BOTTOM for d in dels)

    def test_anchor_coordination_load_exceeds_batched(self):
        """Per-op forwarding concentrates Θ(ops) coordination messages at
        the anchor; batching concentrates O(1) per iteration."""
        from repro import SkeapHeap
        from repro.overlay.ldb import owner_of

        n, ops = 12, 120
        u = UnbatchedHeapCluster(n, n_priorities=2, seed=8, metrics_detail=True)
        for i in range(ops):
            u.insert(priority=1, at=i % n)
        u.settle()
        u_load = u.metrics.owner_action_total(
            owner_of(u.topology.anchor), ["ub_fwd", "ub_insert", "ub_delete"]
        )

        s = SkeapHeap(
            n, n_priorities=2, seed=8, record_history=False, metrics_detail=True
        )
        for i in range(ops):
            s.insert(priority=1, at=i % n)
        s.settle()
        s_load = s.metrics.owner_action_total(owner_of(s.topology.anchor), ["agg_up"])
        assert u_load >= ops  # at least one forwarded message per op
        assert s_load < u_load / 4
