"""Tests for histories, reference heaps and the consistency checkers.

The checkers are only trustworthy if they *reject* bad histories, so half
of this file constructs violations of each Definition 1.1/1.2 property and
asserts the corresponding checker fires.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConsistencyError
from repro.semantics import (
    DELETE,
    INSERT,
    FifoPriorityHeap,
    History,
    OrderedHeap,
    check_element_conservation,
    check_heap_consistency,
    check_local_consistency,
    check_settled,
    replay_fifo,
    replay_lifo,
    replay_ordered,
    replay_ordered_exact,
)


def h_insert(h, node, seq, prio, uid, key):
    h.record_submit((node, seq), INSERT, prio, uid)
    h.record_order((node, seq), key)
    h.record_insert_done((node, seq))


def h_delete(h, node, seq, key, returned_uid=None):
    h.record_submit((node, seq), DELETE)
    h.record_order((node, seq), key)
    if returned_uid is None:
        h.record_bot((node, seq))
    else:
        h.record_return((node, seq), returned_uid)


class TestHistoryRecording:
    def test_duplicate_op_id_rejected(self):
        h = History()
        h.record_submit((0, 0), INSERT, 1, 1)
        with pytest.raises(ConsistencyError):
            h.record_submit((0, 0), INSERT, 1, 2)

    def test_duplicate_uid_rejected(self):
        h = History()
        h.record_submit((0, 0), INSERT, 1, 7)
        with pytest.raises(ConsistencyError):
            h.record_submit((0, 1), INSERT, 1, 7)

    def test_insert_needs_uid(self):
        h = History()
        with pytest.raises(ConsistencyError):
            h.record_submit((0, 0), INSERT, 1, None)

    def test_double_completion_rejected(self):
        h = History()
        h.record_submit((0, 0), DELETE)
        h.record_bot((0, 0))
        with pytest.raises(ConsistencyError):
            h.record_return((0, 0), 1)

    def test_double_serialization_rejected(self):
        h = History()
        h.record_submit((0, 0), DELETE)
        h.record_order((0, 0), (1,))
        with pytest.raises(ConsistencyError):
            h.record_order((0, 0), (2,))

    def test_matchings(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_delete(h, 1, 0, (1,), returned_uid=10)
        ((ins, dele),) = h.matchings()
        assert ins.uid == 10 and dele.returned_uid == 10


class TestCheckersAcceptValid:
    def test_simple_valid_history(self):
        h = History()
        h_insert(h, 0, 0, 2, 10, (0,))
        h_insert(h, 0, 1, 1, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=11)
        h_delete(h, 1, 1, (3,), returned_uid=10)
        h_delete(h, 1, 2, (4,))  # bottom on empty heap
        check_settled(h)
        check_local_consistency(h)
        check_heap_consistency(h)
        replay_fifo(h)

    def test_unmatched_inserts_left_in_heap_ok(self):
        h = History()
        h_insert(h, 0, 0, 5, 10, (0,))
        check_heap_consistency(h)


class TestCheckersRejectViolations:
    def test_unsettled_history(self):
        h = History()
        h.record_submit((0, 0), INSERT, 1, 1)
        with pytest.raises(ConsistencyError):
            check_settled(h)

    def test_local_order_violation(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (5,))
        h_insert(h, 0, 1, 1, 11, (2,))  # later op serialized earlier
        with pytest.raises(ConsistencyError):
            check_local_consistency(h)

    def test_property1_delete_before_insert(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (5,))
        h_delete(h, 1, 0, (1,), returned_uid=10)  # ≺ the insert
        with pytest.raises(ConsistencyError):
            check_heap_consistency(h)

    def test_property2_bottom_while_element_present(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_delete(h, 1, 0, (1,))  # ⊥ although uid 10 is in the heap
        h_delete(h, 1, 1, (2,), returned_uid=10)
        with pytest.raises(ConsistencyError):
            check_heap_consistency(h)

    def test_property3_wrong_priority_served(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))  # more urgent, never matched
        h_insert(h, 0, 1, 5, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=11)
        with pytest.raises(ConsistencyError):
            check_heap_consistency(h)

    def test_element_returned_twice(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_delete(h, 1, 0, (1,), returned_uid=10)
        h_delete(h, 2, 0, (2,), returned_uid=10)
        with pytest.raises(ConsistencyError):
            check_heap_consistency(h)

    def test_replay_fifo_rejects_wrong_tie_order(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_insert(h, 0, 1, 1, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=11)  # FIFO demands uid 10 first
        h_delete(h, 1, 1, (3,), returned_uid=10)
        check_heap_consistency(h)  # ties are allowed by Definition 1.2 ...
        with pytest.raises(ConsistencyError):
            replay_fifo(h)  # ... but not by Skeap's FIFO serialization

    def test_max_order_rejects_lower_priority_served(self):
        h = History()
        h_insert(h, 0, 0, 9, 10, (0,))  # the max-heap's most urgent element
        h_insert(h, 0, 1, 1, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=11)  # served 1 while 9 present
        check_heap_consistency(h, order="min")  # fine as a min-heap ...
        with pytest.raises(ConsistencyError):
            check_heap_consistency(h, order="max")  # ... a violation as max

    def test_replay_ordered_rejects_wrong_priority(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_insert(h, 0, 1, 5, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=11)  # serial execution pops 1
        h_delete(h, 1, 1, (3,), returned_uid=10)
        with pytest.raises(ConsistencyError):
            replay_ordered(h)

    def test_replay_ordered_rejects_bot_on_nonempty(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_delete(h, 1, 0, (1,))  # ⊥ although uid 10 is available
        with pytest.raises(ConsistencyError):
            replay_ordered(h)

    def test_replay_ordered_exact_rejects_wrong_uid_within_priority(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_insert(h, 0, 1, 1, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=11)  # uid order demands 10 first
        h_delete(h, 1, 1, (3,), returned_uid=10)
        replay_ordered(h)  # priority-level equivalence holds ...
        with pytest.raises(ConsistencyError):
            replay_ordered_exact(h)  # ... uid-exact (Seap-SC) does not

    def test_replay_lifo_rejects_fifo_order(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_insert(h, 0, 1, 1, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=10)  # LIFO demands uid 11 first
        h_delete(h, 1, 1, (3,), returned_uid=11)
        with pytest.raises(ConsistencyError):
            replay_lifo(h)

    def test_replay_lifo_rejects_bot_on_nonempty(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_delete(h, 1, 0, (1,))
        with pytest.raises(ConsistencyError):
            replay_lifo(h)


class TestElementConservation:
    def _history(self):
        h = History()
        h_insert(h, 0, 0, 1, 10, (0,))
        h_insert(h, 0, 1, 2, 11, (1,))
        h_delete(h, 1, 0, (2,), returned_uid=10)
        return h

    def test_accepts_balanced_census(self):
        check_element_conservation(self._history(), [11])

    def test_rejects_lost_element(self):
        # uid 11 was inserted, never returned, and is not stored anywhere.
        with pytest.raises(ConsistencyError, match="lost"):
            check_element_conservation(self._history(), [])

    def test_rejects_returned_and_still_stored(self):
        with pytest.raises(ConsistencyError, match="returned and still stored"):
            check_element_conservation(self._history(), [10, 11])

    def test_rejects_stored_twice(self):
        with pytest.raises(ConsistencyError, match="stored more than once"):
            check_element_conservation(self._history(), [11, 11])

    def test_rejects_phantom_stored_element(self):
        with pytest.raises(ConsistencyError, match="never inserted"):
            check_element_conservation(self._history(), [11, 99])

    def test_rejects_element_returned_twice(self):
        h = self._history()
        h_delete(h, 1, 1, (3,), returned_uid=10)  # 10 handed out again
        with pytest.raises(ConsistencyError, match="returned twice"):
            check_element_conservation(h, [11])

    def test_rejects_unknown_returned_element(self):
        h = self._history()
        h_delete(h, 1, 1, (3,), returned_uid=99)
        with pytest.raises(ConsistencyError, match="unknown element"):
            check_element_conservation(h, [11])


class TestReferenceHeaps:
    def test_fifo_orders_by_priority_then_arrival(self):
        heap = FifoPriorityHeap()
        heap.insert(2, 1)
        heap.insert(1, 2)
        heap.insert(1, 3)
        assert heap.delete_min() == (1, 2)
        assert heap.delete_min() == (1, 3)
        assert heap.delete_min() == (2, 1)
        assert heap.delete_min() is None

    def test_ordered_heap_ties_by_uid(self):
        heap = OrderedHeap()
        heap.insert(1, 9)
        heap.insert(1, 3)
        assert heap.delete_min() == (1, 3)
        assert heap.peek() == (1, 9)

    @given(st.lists(st.tuples(st.integers(0, 5), st.booleans()), max_size=60))
    def test_fifo_matches_stable_sort_model(self, script):
        """FifoPriorityHeap == sort by (priority, arrival index)."""
        heap = FifoPriorityHeap()
        model: list[tuple[int, int]] = []
        uid = 0
        for prio, is_insert in script:
            if is_insert:
                uid += 1
                heap.insert(prio, uid)
                model.append((prio, uid))
            else:
                got = heap.delete_min()
                if not model:
                    assert got is None
                else:
                    best = min(model, key=lambda t: (t[0], model.index(t)))
                    # FIFO: earliest-arrived among minimal priority
                    min_p = min(t[0] for t in model)
                    expect = next(t for t in model if t[0] == min_p)
                    model.remove(expect)
                    assert got == expect

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 100)), max_size=50))
    def test_ordered_heap_matches_sorted_pops(self, keys):
        heap = OrderedHeap()
        uniq = list(dict.fromkeys(keys))
        for p, u in uniq:
            heap.insert(p, u)
        drained = []
        while len(heap):
            drained.append(heap.delete_min())
        assert drained == sorted(uniq)
