"""T6 — KSelect's O(log n)-bit messages vs the Θ(m)-bit gather baseline."""

from bench_util import run_experiment

from repro.harness.experiments import t6_kselect_vs_gather


def test_bench_t6_kselect_vs_gather(benchmark):
    run_experiment(benchmark, t6_kselect_vs_gather, ns=(8, 16, 32))
