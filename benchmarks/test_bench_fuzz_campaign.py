"""A3 — fault-injection fuzz campaign across every protocol target."""

from bench_util import run_experiment

from repro.harness.experiments import a3_fuzz_campaign


def test_bench_a3_fuzz_campaign(benchmark):
    run_experiment(benchmark, a3_fuzz_campaign, n_plans=42)
