"""T15 — routing stays O(log n) hops at 10^4-node scale (Lemma A.2 at scale).

Trimmed grid (topology construction dominates at the full 10^4 point);
the harness `scale-smoke` CI job runs the full default grid.
"""

from bench_util import run_experiment

from repro.harness.experiments import t15_routing_hops_at_scale


def test_bench_t15_routing_hops_at_scale(benchmark):
    run_experiment(
        benchmark, t15_routing_hops_at_scale, ns=(512, 1024, 2048), probes=10
    )
