"""T13 — join/leave probes cost O(log n) hops; no elements are lost."""

from bench_util import run_experiment

from repro.harness.experiments import t13_membership


def test_bench_t13_membership(benchmark):
    run_experiment(benchmark, t13_membership, ns=(8, 16, 32))
