"""Micro-benchmarks of the hot data-structure paths.

These are the only benchmarks where statistical timing matters (many
rounds/iterations): batch combining, anchor interval assignment, candidate
pruning, sequential-heap ops, and single-message routing steps — the inner
loops every protocol phase turns on.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BinaryHeap
from repro.kselect import CandidateSet
from repro.skeap import AnchorState, Batch, BatchEntry, encode_ops


def test_bench_micro_encode_ops(benchmark):
    rng = np.random.default_rng(0)
    ops = [
        ("ins", int(p)) if p > 0 else ("del", None)
        for p in rng.integers(0, 4, size=2000)
    ]
    benchmark(encode_ops, ops, 3)


def test_bench_micro_batch_combine(benchmark):
    rng = np.random.default_rng(1)
    entries = [
        BatchEntry(tuple(int(x) for x in rng.integers(0, 5, size=4)), int(rng.integers(0, 5)))
        for _ in range(200)
    ]
    a = Batch(4, entries)
    b = Batch(4, entries[::-1])
    benchmark(a.combine, b)


def test_bench_micro_anchor_assign(benchmark):
    rng = np.random.default_rng(2)
    entries = [
        BatchEntry(tuple(int(x) for x in rng.integers(0, 10, size=4)), int(rng.integers(0, 10)))
        for _ in range(100)
    ]

    def assign():
        anchor = AnchorState(4)
        return anchor.assign(Batch(4, entries))

    benchmark(assign)


def test_bench_micro_candidate_prune(benchmark):
    rng = np.random.default_rng(3)
    keys = [(int(p), uid) for uid, p in enumerate(rng.integers(0, 1 << 24, size=20_000))]

    def prune():
        cs = CandidateSet(keys)
        cs.prune((1 << 22, 0), (3 << 22, 0))
        return len(cs)

    benchmark(prune)


def test_bench_micro_binary_heap(benchmark):
    rng = np.random.default_rng(4)
    keys = [(int(p), uid) for uid, p in enumerate(rng.integers(0, 1 << 30, size=5000))]

    def churn():
        heap = BinaryHeap()
        for key in keys:
            heap.insert(key)
        out = 0
        while heap:
            out ^= heap.delete_min()[1]
        return out

    benchmark(churn)


def test_bench_micro_skeap_iteration(benchmark):
    """One full empty-batch protocol iteration on a 16-node cluster."""
    from repro import SkeapHeap

    heap = SkeapHeap(16, n_priorities=3, seed=0, record_history=False)

    def one_iteration():
        target = heap.anchor_node.iteration + 1
        heap.runner.run_until(
            lambda: heap.anchor_node.iteration >= target, max_rounds=10_000
        )

    benchmark.pedantic(one_iteration, rounds=5, iterations=1)


def test_bench_micro_idle_round_stepping(benchmark):
    """Stepping a mostly-idle cluster: the sparse wake-set means cost
    tracks the two active nodes, not the 200 parked ones."""
    from repro.sim import ProtocolNode, SyncRunner

    class Idle(ProtocolNode):
        pass

    class Chatter(ProtocolNode):
        def __init__(self, node_id, peer):
            super().__init__(node_id)
            self.peer = peer

        def wants_activation(self):
            return True

        def on_activate(self):
            self.send(self.peer, "ping", value=0)

        def on_ping(self, sender, value):
            pass

    runner = SyncRunner(seed=0)
    runner.register_all([Idle(i) for i in range(200)])
    runner.register_all([Chatter(200, 201), Chatter(201, 200)])
    for _ in range(2):  # drain the bootstrap activations
        runner.step()

    def hundred_rounds():
        for _ in range(100):
            runner.step()

    benchmark(hundred_rounds)


def test_bench_micro_record_delivery_lean(benchmark):
    from repro.sim import Message, MetricsCollector

    msgs = [
        Message(sender=0, dest=i % 16, action="route", payload={"v": i})
        for i in range(1000)
    ]
    mc = MetricsCollector(detail=False)

    def record_all():
        for msg in msgs:
            mc.record_delivery(msg)
        mc.end_round()

    benchmark(record_all)


def test_bench_micro_record_delivery_detail(benchmark):
    from repro.sim import Message, MetricsCollector

    msgs = [
        Message(sender=0, dest=i % 16, action="route", payload={"v": i})
        for i in range(1000)
    ]
    mc = MetricsCollector(detail=True)

    def record_all():
        for msg in msgs:
            mc.record_delivery(msg)
        mc.end_round()

    benchmark(record_all)


def _bench_routing(benchmark, exact_transport: bool):
    from repro.cluster import OverlayCluster

    def route_batch():
        cluster = OverlayCluster(24, seed=7, exact_transport=exact_transport)
        done = []
        for node in cluster.nodes.values():
            node.on_sink = lambda origin, _n=node: done.append(_n.id)
        rng = cluster.runner.rng.stream("bench")
        targets = [float(rng.random()) for _ in range(200)]
        for i, t in enumerate(targets):
            cluster.middle_node(i % 24).route_to_point(t, "sink", {})
        cluster.runner.run_until(lambda: len(done) == 200, max_rounds=50_000)
        return sum(len(n.route_hops) for n in cluster.nodes.values())

    hops = benchmark.pedantic(route_batch, rounds=5, iterations=1)
    benchmark.extra_info["hops"] = hops
    assert (route_batch() == hops)  # deterministic hop count either mode


def test_bench_micro_routing_fast(benchmark):
    """200 routed messages on a 24-node overlay via hop-compressed flights."""
    _bench_routing(benchmark, exact_transport=False)


def test_bench_micro_routing_exact(benchmark):
    """The same 200 routes travelling hop by hop (pre-PR3 transport)."""
    _bench_routing(benchmark, exact_transport=True)


def test_bench_micro_payload_sizing(benchmark):
    """Element-heavy payload sizing: the memoized per-type sizer cache
    turns the isinstance scan into a dict hit."""
    from repro.element import Element
    from repro.sim import payload_size_bits

    rng = np.random.default_rng(5)
    payloads = [
        [Element(int(p), uid) for uid, p in enumerate(rng.integers(1, 4, size=32))]
        for _ in range(100)
    ]

    def size_all():
        return sum(payload_size_bits(p) for p in payloads)

    benchmark(size_all)
