"""Shared helper for the experiment benchmarks.

Every benchmark runs one experiment from ``repro.harness.experiments``
exactly once (the experiments are deterministic end-to-end simulations, so
single-shot wall-clock is the meaningful number), asserts the paper claim's
shape verdict, and prints the regenerated table (visible with ``-s`` /
captured in the bench log).
"""

from __future__ import annotations


def run_experiment(benchmark, fn, **kwargs):
    table = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(table.render())
    # A table without a verdict is a new experiment with no claim fitted
    # yet — report it as such instead of failing (the same "new, no
    # baseline" stance scripts/compare_bench.py takes for benchmarks
    # absent from the committed baseline).
    verdict = getattr(table, "verdict", None)
    if verdict is None:
        print("   verdict: (new, no baseline)")
    else:
        assert verdict == "SHAPE HOLDS", table.render()
    return table
