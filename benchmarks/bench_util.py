"""Shared helper for the experiment benchmarks.

Every benchmark runs one experiment from ``repro.harness.experiments``
exactly once (the experiments are deterministic end-to-end simulations, so
single-shot wall-clock is the meaningful number), asserts the paper claim's
shape verdict, and prints the regenerated table (visible with ``-s`` /
captured in the bench log).
"""

from __future__ import annotations


def run_experiment(benchmark, fn, **kwargs):
    table = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(table.render())
    assert table.verdict == "SHAPE HOLDS", table.render()
    return table
