"""T11 — the aggregation tree has height O(log n) w.h.p. (Cor. A.4)."""

from bench_util import run_experiment

from repro.harness.experiments import t11_tree_height


def test_bench_t11_tree_height(benchmark):
    run_experiment(benchmark, t11_tree_height, ns=(8, 16, 32, 64, 128, 256), n_seeds=6)
