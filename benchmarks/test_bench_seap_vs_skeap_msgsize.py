"""T8 — the headline: Seap's messages stay O(log n) bits as Λ grows;
Skeap's grow linearly in Λ (Lemma 5.5 vs Lemma 3.8)."""

from bench_util import run_experiment

from repro.harness.experiments import t8_seap_vs_skeap_msgsize


def test_bench_t8_seap_vs_skeap_msgsize(benchmark):
    run_experiment(benchmark, t8_seap_vs_skeap_msgsize, lams=(1, 2, 4, 8), n=12, n_rounds=20)
