"""Benchmarks of the sync-kernel dispatch modes (PR6's batched kernel).

Runs the same deterministic Skeap workload as ``harness bench-kernel``
under per-message and batched dispatch.  Single-shot timing (the workload
is a deterministic end-to-end simulation — same reasoning as
``bench_util.run_experiment``), with the kernel counters attached as
``extra_info`` so the committed ``BENCH_PR6.json`` carries them.

The identity assertion is the point: both modes must produce the same
core metrics, so every benchmark run doubles as a byte-identity check of
the batched kernel.
"""

from __future__ import annotations

from repro.harness.bench_kernel import drive_kernel_workload


def _core(heap):
    m = heap.metrics
    return (
        m.rounds,
        m.messages,
        m.bits,
        m.max_message_bits,
        m.congestion,
        list(m.congestion_by_round),
    )


def _run(benchmark, batched: bool):
    heap = benchmark.pedantic(
        drive_kernel_workload,
        kwargs={"n_nodes": 48, "ops": 300, "seed": 7, "batched": batched},
        rounds=1,
        iterations=1,
    )
    runner = heap.runner
    rounds = heap.metrics.rounds or 1
    benchmark.extra_info["messages"] = heap.metrics.messages
    benchmark.extra_info["allocations_per_round"] = round(
        runner.msgs_allocated / rounds, 2
    )
    benchmark.extra_info["messages_reused"] = runner.msgs_reused
    benchmark.extra_info["batched_rounds"] = runner.batched_rounds
    return heap


def test_bench_kernel_per_message(benchmark):
    heap = _run(benchmark, batched=False)
    assert heap.runner.batched_rounds == 0


def test_bench_kernel_batched(benchmark):
    heap = _run(benchmark, batched=True)
    assert heap.runner.batched_rounds > 0
    assert heap.runner.msgs_reused > 0


def test_bench_kernel_modes_identical():
    """Not a timing benchmark: the cross-mode identity gate."""
    per = drive_kernel_workload(batched=False)
    bat = drive_kernel_workload(batched=True)
    assert _core(per) == _core(bat)
