"""T5 — KSelect survivor counts match Lemmas 4.4 and 4.7."""

from bench_util import run_experiment

from repro.harness.experiments import t5_kselect_reduction


def test_bench_t5_kselect_reduction(benchmark):
    run_experiment(benchmark, t5_kselect_reduction, n=48, elements_per_node=48)
