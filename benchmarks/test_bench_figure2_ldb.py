"""F2 — Figure 2's 6-virtual-node LDB structure reproduces exactly."""

from bench_util import run_experiment

from repro.harness.experiments import f2_figure2_ldb


def test_bench_f2_figure2_ldb(benchmark):
    run_experiment(benchmark, f2_figure2_ldb)
