"""T1 — Skeap processes a batch in O(log n) rounds (Cor. 3.6)."""

from bench_util import run_experiment

from repro.harness.experiments import t1_skeap_rounds


def test_bench_t1_skeap_rounds(benchmark):
    run_experiment(benchmark, t1_skeap_rounds, ns=(8, 16, 32, 64))
