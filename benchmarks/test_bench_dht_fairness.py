"""T9 — elements are stored uniformly: m/n per node (Lemma 2.2(iv))."""

from bench_util import run_experiment

from repro.harness.experiments import t9_dht_fairness


def test_bench_t9_dht_fairness(benchmark):
    run_experiment(benchmark, t9_dht_fairness, ns=(16, 32), elements_per_node=24)
