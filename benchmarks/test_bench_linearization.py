"""T14 — the sorted overlay list self-constructs (Appendix A substrate)."""

from bench_util import run_experiment

from repro.harness.experiments import t14_linearization


def test_bench_t14_linearization(benchmark):
    run_experiment(benchmark, t14_linearization, ns=(8, 16, 32, 64))
