"""T12 — batching removes the coordinator hot spot (§1 headline)."""

from bench_util import run_experiment

from repro.harness.experiments import t12_scalability_baselines


def test_bench_t12_scalability_baselines(benchmark):
    run_experiment(benchmark, t12_scalability_baselines, n=24, lams=(1, 2, 4), n_rounds=25)
