"""T4 — KSelect runs in O(log n) rounds w.h.p. (Theorem 4.2)."""

from bench_util import run_experiment

from repro.harness.experiments import t4_kselect_rounds


def test_bench_t4_kselect_rounds(benchmark):
    run_experiment(benchmark, t4_kselect_rounds, ns=(8, 16, 32, 64))
