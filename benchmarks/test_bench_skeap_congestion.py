"""T2 — Skeap congestion is O~(Λ) (Theorem 3.2(4))."""

from bench_util import run_experiment

from repro.harness.experiments import t2_skeap_congestion


def test_bench_t2_skeap_congestion(benchmark):
    run_experiment(benchmark, t2_skeap_congestion, lams=(1, 2, 4), n=24, n_rounds=30)
