"""A2 — the §6 sequentially consistent Seap variant and its cost."""

from bench_util import run_experiment

from repro.harness.experiments import a2_seap_sc_cost


def test_bench_a2_seap_sc_cost(benchmark):
    run_experiment(benchmark, a2_seap_sc_cost, n=6, n_elements=30)
