"""T7 — Seap's phases finish in O(log n) rounds (Theorem 5.1(3))."""

from bench_util import run_experiment

from repro.harness.experiments import t7_seap_rounds


def test_bench_t7_seap_rounds(benchmark):
    run_experiment(benchmark, t7_seap_rounds, ns=(8, 16, 32, 64))
