"""F1 — Figure 1's 4-phase Skeap trace reproduces exactly."""

from bench_util import run_experiment

from repro.harness.experiments import f1_figure1_trace


def test_bench_f1_figure1_trace(benchmark):
    run_experiment(benchmark, f1_figure1_trace)
