"""A1 — ablations: batching vs unbatched anchor load; the δ window."""

from bench_util import run_experiment

from repro.harness.experiments import a1_ablations


def test_bench_a1_ablations(benchmark):
    run_experiment(benchmark, a1_ablations, n=12, total_ops=72)
