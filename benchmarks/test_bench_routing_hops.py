"""T10 — LDB point routing takes O(log n) hops w.h.p. (Lemma A.2)."""

from bench_util import run_experiment

from repro.harness.experiments import t10_routing_hops


def test_bench_t10_routing_hops(benchmark):
    run_experiment(benchmark, t10_routing_hops, ns=(8, 16, 32, 64, 128), probes=30)
