"""T3 — Skeap message size grows with Λ: O(Λ log² n) bits (Lemma 3.8)."""

from bench_util import run_experiment

from repro.harness.experiments import t3_skeap_msgsize


def test_bench_t3_skeap_msgsize(benchmark):
    run_experiment(benchmark, t3_skeap_msgsize, lams=(1, 2, 4, 8), n=24, n_rounds=25)
