#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage::

    python scripts/compare_bench.py BASELINE.json CURRENT.json [--max-ratio 1.25]

Exits non-zero if any benchmark shared by both files regressed by more
than ``--max-ratio`` (default 1.25: >25% slower than baseline).  Medians
are compared — they are far more stable than means on shared CI runners.
Benchmarks present in only one file are reported but never fail the
check, so adding or retiring a benchmark doesn't need a baseline dance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_medians(path: Path) -> dict[str, float]:
    """Map fullname -> median for every benchmark entry that has one.

    Entries without a usable median (hand-rolled or partial JSON, e.g. a
    baseline file predating a newly added benchmark suite) are skipped
    rather than raising: a benchmark absent from the baseline is "new, no
    baseline", never an error.
    """
    data = json.loads(path.read_text())
    medians: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname")
        median = bench.get("stats", {}).get("median")
        if name is None or not isinstance(median, (int, float)):
            continue
        medians[name] = float(median)
    return medians


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.25,
        help="fail if current/baseline median exceeds this (default 1.25)",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)

    shared = sorted(set(baseline) & set(current))
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))

    failures = []
    for name in shared:
        ratio = current[name] / baseline[name]
        flag = "REGRESSED" if ratio > args.max_ratio else "ok"
        print(
            f"{flag:>9}  {ratio:6.2f}x  "
            f"{baseline[name] * 1e3:10.3f}ms -> {current[name] * 1e3:10.3f}ms  {name}"
        )
        if ratio > args.max_ratio:
            failures.append((name, ratio))
    for name in only_base:
        print(f"  missing  (baseline only) {name}")
    for name in only_cur:
        print(f"      new  (new, no baseline)  {name}")

    if not shared:
        print("error: no shared benchmarks between baseline and current", file=sys.stderr)
        return 2
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.max_ratio:.2f}x baseline:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {ratio:.2f}x  {name}", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared benchmarks within {args.max_ratio:.2f}x baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
