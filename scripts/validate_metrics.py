#!/usr/bin/env python
"""Validate exported telemetry artifacts (CI's telemetry-smoke schema check).

Usage::

    python scripts/validate_metrics.py [--prom FILE]... [--jsonl FILE]...
                                       [--slo FILE]... [--expect NAME]...

* ``--prom`` files must be valid Prometheus text exposition output:
  every sample line parses, every histogram ships the complete
  ``_bucket`` (with ``+Inf``) / ``_sum`` / ``_count`` triple;
* ``--jsonl`` files must be one snapshot point per line, each passing
  the snapshot schema check with a monotonically non-decreasing ``t``;
* ``--slo`` files must be ``loadtest --slo-out`` reports: a JSON object
  with a boolean ``slo.passed`` and one entry per declared objective;
* ``--expect NAME`` (repeatable) additionally requires every ``--prom``
  file to carry at least one sample of metric ``NAME`` — how CI pins
  down that e.g. the durability plane's journal/recovery series are
  actually exported, not just schema-valid-by-absence.

Exit code 0 on success, 1 with the problems listed on stderr otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.export import validate_jsonl, validate_prometheus_text  # noqa: E402


def _check_slo(path: Path) -> list[str]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable SLO report: {exc}"]
    problems: list[str] = []
    slo = payload.get("slo")
    if not isinstance(slo, dict):
        return [f"{path}: missing 'slo' object"]
    if not isinstance(slo.get("passed"), bool):
        problems.append(f"{path}: slo.passed must be a boolean")
    objectives = slo.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        problems.append(f"{path}: slo.objectives must be a non-empty list")
        return problems
    for i, obj in enumerate(objectives):
        for field in ("metric", "direction", "threshold", "observed", "passed"):
            if field not in obj:
                problems.append(f"{path}: objective {i} missing {field!r}")
    if isinstance(slo.get("passed"), bool):
        derived = all(bool(o.get("passed")) for o in objectives)
        if derived != slo["passed"]:
            problems.append(
                f"{path}: slo.passed={slo['passed']} contradicts its objectives"
            )
    return problems


def _collect(args: list[str], flag: str) -> list[Path]:
    paths: list[Path] = []
    i = 0
    while i < len(args):
        if args[i] == flag:
            if i + 1 >= len(args):
                raise SystemExit(f"{flag} requires a path")
            paths.append(Path(args[i + 1]))
            del args[i : i + 2]
        else:
            i += 1
    return paths


def _check_expected(path: Path, text: str, names: list[str]) -> list[str]:
    """Require a sample of every expected metric name in the prom text.

    Histograms export as ``NAME_bucket``/``NAME_sum``/``NAME_count``, so
    an expected histogram name matches via its suffixed series too.
    """
    import re

    problems = []
    for name in names:
        pattern = rf"(?m)^{re.escape(name)}(?:_bucket|_sum|_count)?(?:\{{|\s)"
        if not re.search(pattern, text):
            problems.append(f"{path}: expected metric {name!r} not exported")
    return problems


def main(argv: list[str]) -> int:
    args = list(argv)
    prom_paths = _collect(args, "--prom")
    jsonl_paths = _collect(args, "--jsonl")
    slo_paths = _collect(args, "--slo")
    expected = [str(p) for p in _collect(args, "--expect")]
    if expected and not prom_paths:
        print("--expect needs at least one --prom file", file=sys.stderr)
        return 2
    if args:
        print(f"unknown arguments: {args}", file=sys.stderr)
        return 2
    if not (prom_paths or jsonl_paths or slo_paths):
        print("nothing to validate (pass --prom/--jsonl/--slo)", file=sys.stderr)
        return 2
    problems: list[str] = []
    for path in prom_paths:
        if not path.is_file():
            problems.append(f"missing {path}")
            continue
        text = path.read_text()
        problems += [f"{path}: {p}" for p in validate_prometheus_text(text)]
        problems += _check_expected(path, text, expected)
    for path in jsonl_paths:
        if not path.is_file():
            problems.append(f"missing {path}")
            continue
        problems += [f"{path}: {p}" for p in validate_jsonl(path.read_text())]
    for path in slo_paths:
        if not path.is_file():
            problems.append(f"missing {path}")
            continue
        problems += _check_slo(path)
    if problems:
        for p in problems:
            print(f"validate_metrics: {p}", file=sys.stderr)
        return 1
    checked = len(prom_paths) + len(jsonl_paths) + len(slo_paths)
    print(f"validate_metrics: OK ({checked} artifacts)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
