#!/usr/bin/env python
"""Validate an exported Chrome trace (and optionally its JSONL twin).

Usage::

    python scripts/validate_trace.py TRACE_DIR [--ops N]

``TRACE_DIR`` is a ``harness trace`` / ``replay --trace`` output
directory holding ``trace.json`` (+ ``events.jsonl`` + ``manifest.json``).
Checks:

* the Chrome trace validates against the exporter's schema contract;
* every event line of ``events.jsonl`` is a JSON object with ``ts``/``kind``;
* the manifest's table hashes are well-formed sha256 strings;
* with ``--ops N``: the trace contains exactly N complete op spans
  (one "X" slice per heap operation on the operations track).

Exit code 0 on success, 1 with the problems listed on stderr otherwise.
CI runs this over the trace-smoke artifacts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.trace_export import validate_chrome_trace  # noqa: E402


def validate_dir(trace_dir: Path, expect_ops: int | None = None) -> list[str]:
    problems: list[str] = []
    trace_path = trace_dir / "trace.json"
    if not trace_path.is_file():
        return [f"missing {trace_path}"]
    trace = json.loads(trace_path.read_text())
    problems += validate_chrome_trace(trace)

    if expect_ops is not None:
        slices = [
            e for e in trace.get("traceEvents", [])
            if e.get("ph") == "X" and e.get("pid") == 1
        ]
        if len(slices) != expect_ops:
            problems.append(
                f"expected {expect_ops} complete op spans, found {len(slices)}"
            )
        incomplete = [e for e in slices if not e.get("args", {}).get("complete")]
        if incomplete:
            problems.append(f"{len(incomplete)} op slices marked incomplete")

    jsonl = trace_dir / "events.jsonl"
    if jsonl.is_file():
        for i, line in enumerate(jsonl.read_text().splitlines()):
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                problems.append(f"events.jsonl line {i + 1}: not JSON")
                break
            if "ts" not in ev or "kind" not in ev:
                problems.append(f"events.jsonl line {i + 1}: missing ts/kind")
                break
    else:
        problems.append(f"missing {jsonl}")

    manifest_path = trace_dir / "manifest.json"
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text())
        for exp_id, entry in manifest.get("tables", {}).items():
            digest = entry.get("sha256", "")
            if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
                problems.append(f"manifest table {exp_id}: malformed sha256")
    else:
        problems.append(f"missing {manifest_path}")
    return problems


def main(argv: list[str]) -> int:
    args = list(argv)
    expect_ops: int | None = None
    if "--ops" in args:
        at = args.index("--ops")
        expect_ops = int(args[at + 1])
        del args[at : at + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    problems = validate_dir(Path(args[0]), expect_ops)
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    print(f"trace in {args[0]} is valid"
          + (f" ({expect_ops} complete op spans)" if expect_ops else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
